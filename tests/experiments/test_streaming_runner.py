"""Stream-equivalence and dense-vs-streaming seam tests.

Two separate claims, tested separately:

* **Lazy == eager.**  Feeding the manager a :class:`WorkloadStream`
  (one pending arrival in the event heap at a time) produces the same
  run, bit for bit, as materializing the stream first — completion
  times, queue delays, tenants, everything.
* **Streaming == dense, in the aggregates.**  ``streaming_metrics``
  changes *bookkeeping only*: the sketch-backed summary's makespan,
  counts, totals and maxima equal the dense run's exactly (per-tenant
  means to summation-order ulps), and its percentiles fall within the
  sketch's certified rank window of the dense distribution.

``data/streaming_golden.json`` pins the ``diurnal_cluster`` scenario so
a future refactor of the generator, the manager's stream pull, or the
sketch cannot silently shift any of it.
"""

from __future__ import annotations

import hashlib
import json
from functools import partial
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.na import NAPolicy
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.errors import MetricsError
from repro.experiments.batch import run_many
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import diurnal_cluster
from repro.workloads.generator import make_stream

_GOLDEN = Path(__file__).parent / "data" / "streaming_golden.json"
_TENANTS = (("batch", 3.0, 1.0), ("interactive", 1.0, 4.0))


def _digest(mapping: dict) -> str:
    """The repo's golden convention: sha256 over sorted reprs."""
    payload = {k: repr(v) for k, v in mapping.items()}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def _small_stream(family: str, seed: int):
    params = {"mean_gap": 3.0, "tenants": _TENANTS}
    if family == "pareto_mix":
        # pareto_mix draws each job's size itself; cap the tail so the
        # 25-job runs stay fast.
        params["size_cap"] = 2.0
    else:
        params["work_scale"] = 0.25
    return make_stream(family, n_jobs=25, seed=seed, **params)


def _run(workload, *, streaming=False, policy=NAPolicy, seed=7, **kw):
    kw.setdefault("n_workers", 4)
    kw.setdefault("max_containers", 2)
    kw.setdefault("admission", "wfq")
    return run_cluster(
        workload, policy, SimulationConfig(seed=seed, trace=False),
        streaming_metrics=streaming, **kw,
    )


class TestLazyEqualsEager:
    @pytest.mark.parametrize("family", ["diurnal", "flash_crowd",
                                        "pareto_mix", "poisson"])
    @pytest.mark.parametrize("seed", range(5))
    def test_bit_identical_run(self, family, seed):
        stream = _small_stream(family, seed)
        lazy = _run(stream).summary
        eager = _run(stream.materialize()).summary
        assert _digest(lazy.completion_times()) == _digest(
            eager.completion_times()
        )
        assert lazy.queue_delays == eager.queue_delays
        assert lazy.tenants == eager.tenants
        assert lazy.makespan == eager.makespan

    def test_flowcon_policy_also_identical(self):
        stream = _small_stream("diurnal", 3)
        policy = partial(FlowConPolicy, FlowConConfig(alpha=0.10, itval=20.0))
        lazy = _run(stream, policy=policy).summary
        eager = _run(stream.materialize(), policy=policy).summary
        assert _digest(lazy.completion_times()) == _digest(
            eager.completion_times()
        )


class TestStreamingSeam:
    """Satellite (d): the dense-vs-streaming RunSummary seam."""

    @pytest.mark.parametrize("seed", range(5))
    def test_aggregates_equal_dense(self, seed):
        stream = _small_stream("diurnal", seed)
        dense = _run(stream).summary
        streaming = _run(stream, streaming=True).summary
        assert streaming.streaming and not dense.streaming
        assert streaming.makespan == dense.makespan
        assert streaming.n_completed == dense.n_completed == 25
        assert streaming.total_queue_delay() == dense.total_queue_delay()
        assert streaming.max_queue_delay() == dense.max_queue_delay()
        assert streaming.failed_jobs == dense.failed_jobs == {}
        # Mean: same addends, different summation order — ulps only.
        assert streaming.mean_queue_delay() == pytest.approx(
            dense.mean_queue_delay(), rel=1e-12
        )
        for tenant in ("batch", "interactive"):
            assert streaming.mean_queue_delay(tenant) == pytest.approx(
                dense.mean_queue_delay(tenant), rel=1e-12
            )

    def test_percentiles_within_rank_window_of_dense(self):
        stream = make_stream(
            "diurnal", n_jobs=400, seed=11, mean_gap=1.0, work_scale=0.1,
            tenants=_TENANTS,
        )
        dense = _run(stream).summary
        streaming = _run(stream, streaming=True).summary
        delays = np.fromiter(dense.queue_delays.values(), dtype=float)
        full = np.sort(np.concatenate(
            [delays, np.zeros(dense.n_completed - len(delays))]
        ))
        eps = streaming.stream.rank_error_bound()
        n = len(full)
        for q in (0.5, 0.95, 0.99):
            est = streaming.quantile_queue_delay(q)
            lo = full[max(0, int(np.floor((q - eps) * n)) - 1)]
            hi = full[min(n - 1, int(np.ceil((q + eps) * n)) - 1)]
            assert lo <= est <= hi

    def test_failed_jobs_equal_under_chaos(self):
        stream = make_stream(
            "poisson", n_jobs=30, seed=2, mean_gap=2.0, work_scale=0.25,
        )
        kw = dict(failures="rolling:lost", seed=5)
        dense = _run(stream, **kw).summary
        streaming = _run(stream, streaming=True, **kw).summary
        assert streaming.failed_jobs == dense.failed_jobs
        assert streaming.retries == dense.retries
        assert streaming.makespan == dense.makespan
        assert streaming.n_completed == dense.n_completed

    def test_streaming_refuses_per_job_views(self):
        streaming = _run(_small_stream("poisson", 0), streaming=True).summary
        with pytest.raises(MetricsError, match="streaming mode"):
            streaming.completion_times()
        with pytest.raises(MetricsError, match="streaming mode"):
            streaming.completion_time("Job-1")
        with pytest.raises(MetricsError):
            streaming.labels()

    def test_dense_slo_report_requires_stream(self):
        dense = _run(_small_stream("poisson", 0)).summary
        with pytest.raises(MetricsError):
            dense.slo_report()


class TestBatchStreams:
    def test_run_many_accepts_streams(self):
        streams = [_small_stream("poisson", s) for s in (0, 1)]
        records = run_many(
            streams, NAPolicy,
            SimulationConfig(seed=3, trace=False, streaming_metrics=True),
            workers=2, n_workers=4, max_containers=2,
        )
        assert len(records) == 2
        for record in records:
            assert record.stream is not None
            assert record.completions == ()
            assert record.makespan > 0
            summary = record.summary()
            assert summary.streaming
            assert summary.n_completed == 25


class TestStreamingGolden:
    """Pin ``diurnal_cluster`` end to end (satellite b)."""

    def test_matches_golden(self):
        golden = json.loads(_GOLDEN.read_text())
        sc = diurnal_cluster(seed=golden["seed"], n_jobs=golden["n_jobs"])
        stream = sc.stream
        arrivals = {
            s.label: (repr(s.submit_time), s.tenant, s.model_key)
            for s in stream
        }
        assert _digest(arrivals) == golden["arrival_digest"]

        dense = run_cluster(
            sc.workload, NAPolicy,
            SimulationConfig(seed=golden["seed"], trace=False),
            capacities=sc.capacities, max_containers=sc.max_containers,
            admission=sc.admission,
        ).summary
        assert _digest(dense.completion_times()) == (
            golden["completion_digest"]
        )
        assert repr(dense.makespan) == golden["makespan"]

        streaming = run_cluster(
            sc.workload, NAPolicy,
            SimulationConfig(seed=golden["seed"], trace=False),
            capacities=sc.capacities, max_containers=sc.max_containers,
            admission=sc.admission, streaming_metrics=True,
        ).summary
        assert repr(streaming.makespan) == golden["makespan"]
        assert repr(streaming.total_queue_delay()) == (
            golden["total_queue_delay"]
        )
