"""Multi-worker runs through the unified ``run_cluster`` runner.

Historically these tests exercised the deprecated ``run_multi_worker``
wrapper; they now call :func:`repro.experiments.runner.run_cluster`
directly — the wrapper is gone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.na import NAPolicy
from repro.config import SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.errors import ExperimentError
from repro.experiments.runner import run_cluster
from repro.workloads.generator import WorkloadGenerator


def _specs(n=6, seed=5):
    gen = WorkloadGenerator(np.random.default_rng(seed))
    return gen.random_mix(n, window=(0.0, 100.0))


class TestMultiWorkerCluster:
    def test_all_jobs_complete(self):
        result = run_cluster(
            _specs(),
            FlowConPolicy,
            SimulationConfig(seed=5, trace=False),
            n_workers=2,
        )
        assert len(result.completion_times()) == 6

    def test_jobs_spread_across_workers(self):
        result = run_cluster(
            _specs(),
            NAPolicy,
            SimulationConfig(seed=5, trace=False),
            n_workers=2,
        )
        sizes = [len(v) for v in result.per_worker.values()]
        assert sorted(sizes) == [3, 3]

    def test_each_worker_gets_own_policy(self):
        result = run_cluster(
            _specs(),
            FlowConPolicy,
            SimulationConfig(seed=5, trace=False),
            n_workers=3,
        )
        executors = {
            name: policy.executor
            for name, policy in result.policies.items()
        }
        assert len(set(map(id, executors.values()))) == 3
        assert all(ex.runs > 0 for ex in executors.values())

    def test_more_workers_shorter_makespan(self):
        one = run_cluster(
            _specs(), NAPolicy,
            SimulationConfig(seed=5, trace=False), n_workers=1,
        )
        three = run_cluster(
            _specs(), NAPolicy,
            SimulationConfig(seed=5, trace=False), n_workers=3,
        )
        assert three.makespan < one.makespan

    def test_single_worker_matches_run_scenario(self):
        from repro.experiments.runner import run_scenario

        specs = _specs()
        cfg = SimulationConfig(seed=5, trace=False)
        multi = run_cluster(specs, NAPolicy, cfg, n_workers=1)
        single = run_scenario(specs, NAPolicy(), cfg)
        assert multi.completion_times() == pytest.approx(
            single.completion_times()
        )

    def test_wrapper_is_gone(self):
        import repro.experiments as experiments

        assert not hasattr(experiments, "run_multi_worker")
        assert "run_multi_worker" not in experiments.__all__

    def test_validation(self):
        with pytest.raises(ExperimentError):
            run_cluster([], NAPolicy, n_workers=1)
        with pytest.raises(ExperimentError):
            run_cluster(_specs(), NAPolicy, n_workers=0)
