"""Tests for the parallel batch runner and its determinism contract."""

from __future__ import annotations

import pickle
from functools import partial

import pytest

from repro.analysis.robustness import seed_study
from repro.analysis.sweeps import sweep_grid
from repro.baselines.na import NAPolicy
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.errors import ExperimentError
from repro.experiments.batch import RunRecord, RunTask, run_many, run_tasks
from repro.experiments.runner import run_cluster, run_scenario, scaling_study
from repro.experiments.scenarios import fixed_three_job, random_five_job

_CFG = SimulationConfig(trace=False)
_FC = FlowConConfig(alpha=0.10, itval=20.0)


class TestRunMany:
    def test_matches_run_scenario_na(self):
        seeds = [0, 1]
        specs_list = [random_five_job(seed=s) for s in seeds]
        records = run_many(specs_list, NAPolicy, _CFG, seeds=seeds)
        for spec, seed, record in zip(specs_list, seeds, records):
            direct = run_scenario(
                spec, NAPolicy(), _CFG.with_params(seed=seed)
            )
            assert record.completion_times() == direct.completion_times()
            assert record.makespan == direct.makespan
            assert record.policy_name == "NA"
            assert record.seed == seed

    def test_matches_run_scenario_flowcon(self):
        specs = random_five_job(seed=2)
        [record] = run_many(
            [specs], partial(FlowConPolicy, _FC), _CFG, seeds=[2]
        )
        direct = run_scenario(specs, FlowConPolicy(_FC), _CFG.with_params(seed=2))
        assert record.completion_times() == direct.completion_times()
        assert record.policy_name == direct.policy_name

    def test_parallel_identical_to_serial(self):
        seeds = [0, 1, 2]
        specs_list = [random_five_job(seed=s) for s in seeds]
        serial = run_many(specs_list, NAPolicy, _CFG, workers=1, seeds=seeds)
        parallel = run_many(specs_list, NAPolicy, _CFG, workers=2, seeds=seeds)
        assert [r.completion_times() for r in serial] == [
            r.completion_times() for r in parallel
        ]
        assert [r.index for r in parallel] == [0, 1, 2]

    def test_single_factory_is_shared_and_instances_are_fresh(self):
        specs = random_five_job(seed=0)
        records = run_many([specs, specs], NAPolicy, _CFG)
        assert records[0].completion_times() == records[1].completion_times()

    def test_per_run_factories(self):
        specs = fixed_three_job()
        records = run_many(
            [specs, specs],
            [NAPolicy, partial(FlowConPolicy, _FC)],
            _CFG,
        )
        assert records[0].policy_name == "NA"
        assert records[1].policy_name == _FC.describe()

    def test_labels_carried_through(self):
        specs = fixed_three_job()
        records = run_many([specs], NAPolicy, _CFG, labels=["baseline"])
        assert records[0].label == "baseline"

    def test_validation_errors(self):
        specs = fixed_three_job()
        with pytest.raises(ExperimentError):
            run_many([], NAPolicy, _CFG)
        with pytest.raises(ExperimentError):
            run_many([specs], [NAPolicy, NAPolicy], _CFG)
        with pytest.raises(ExperimentError):
            run_many([specs], NAPolicy, _CFG, seeds=[1, 2])
        with pytest.raises(ExperimentError):
            run_many([specs], NAPolicy, _CFG, labels=["a", "b"])
        with pytest.raises(ExperimentError):
            run_many([specs], NAPolicy(), _CFG)  # instance, not factory
        with pytest.raises(ExperimentError):
            run_tasks([], workers=0)

    def test_unpicklable_factory_gets_actionable_error(self):
        specs = fixed_three_job()
        with pytest.raises(ExperimentError, match="picklable"):
            run_many(
                [specs, specs], lambda: NAPolicy(), _CFG, workers=2
            )

    def test_unpicklable_factory_fine_serially(self):
        [record] = run_many([fixed_three_job()], lambda: NAPolicy(), _CFG)
        assert record.policy_name == "NA"


class TestRunRecord:
    def test_pickle_roundtrip(self):
        [record] = run_many([fixed_three_job()], NAPolicy, _CFG)
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record
        assert clone.completion_times() == record.completion_times()

    def test_summary_rebuild(self):
        [record] = run_many([fixed_three_job()], NAPolicy, _CFG)
        summary = record.summary()
        assert summary.makespan == record.makespan
        assert len(summary.completions) == 3

    def test_record_is_compact(self):
        """The whole point: no recorder/simulator crosses the pool."""
        [record] = run_many([fixed_three_job()], NAPolicy, _CFG)
        assert len(pickle.dumps(record)) < 10_000
        assert record.events_processed > 0
        assert record.wall_time > 0


class TestMultiWorkerTasks:
    def test_task_with_n_workers_matches_run_cluster(self):
        specs = random_five_job(seed=1)
        [record] = run_tasks(
            [
                RunTask(
                    index=0,
                    specs=tuple(specs),
                    policy_factory=NAPolicy,
                    sim_config=_CFG.with_params(seed=1),
                    n_workers=2,
                )
            ]
        )
        direct = run_cluster(
            specs, NAPolicy, _CFG.with_params(seed=1), n_workers=2,
        )
        assert record.completion_times() == direct.completion_times()
        assert record.n_workers == 2

    def test_scaling_study_orders_and_labels(self):
        records = scaling_study(
            random_five_job(seed=3),
            NAPolicy,
            [1, 2],
            sim_config=_CFG.with_params(seed=3),
        )
        assert [r.label for r in records] == ["1-worker", "2-worker"]
        # More simulated capacity cannot lengthen the makespan.
        assert records[1].makespan <= records[0].makespan

    def test_scaling_study_needs_sizes(self):
        with pytest.raises(ExperimentError):
            scaling_study(random_five_job(seed=3), NAPolicy, [])


class TestPortedStudies:
    def test_sweep_grid_workers_parity(self):
        kwargs = dict(
            specs=fixed_three_job(),
            alphas=[0.05, 0.10],
            itvals=[20.0],
            sim_config=SimulationConfig(seed=1, trace=False),
        )
        serial = sweep_grid(**kwargs)
        parallel = sweep_grid(**kwargs, workers=2)
        assert [c.report.reductions for c in serial.cells] == [
            c.report.reductions for c in parallel.cells
        ]
        assert serial.makespan_range() == parallel.makespan_range()

    def test_seed_study_workers_parity(self):
        kwargs = dict(seeds=[0, 1], sim_template=_CFG)
        serial = seed_study(random_five_job, **kwargs)
        parallel = seed_study(random_five_job, **kwargs, workers=2)
        assert serial.summary() == parallel.summary()
        assert list(serial.win_rates) == list(parallel.win_rates)
