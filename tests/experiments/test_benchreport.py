"""Unit tests for the benchmark-trajectory report (`repro bench-report`)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.benchreport import (
    BenchPoint,
    load_trajectory,
    trajectory_table,
)


def _snapshot(tmp_path, stamp: str, means: dict[str, float]) -> None:
    (tmp_path / f"BENCH_{stamp}.json").write_text(json.dumps({
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ],
    }))


class TestLoadTrajectory:
    def test_snapshots_load_in_filename_order(self, tmp_path):
        # Written newest-first: filename order must win, not mtime.
        _snapshot(tmp_path, "20260301-120000", {"b": 0.1})
        _snapshot(tmp_path, "20260101-090000", {"a": 0.5})
        points = load_trajectory(tmp_path)
        assert [p.stamp for p in points] == ["0101-0900", "0301-1200"]
        assert points[0].means == {"a": 0.5}

    def test_unreadable_and_empty_snapshots_are_skipped(self, tmp_path):
        _snapshot(tmp_path, "20260101-000000", {"a": 0.5})
        (tmp_path / "BENCH_20260102-000000.json").write_text("{not json")
        (tmp_path / "BENCH_20260103-000000.json").write_text(
            json.dumps({"benchmarks": []})
        )
        points = load_trajectory(tmp_path)
        assert len(points) == 1

    def test_malformed_stats_rows_are_dropped(self, tmp_path):
        (tmp_path / "BENCH_20260101-000000.json").write_text(json.dumps({
            "benchmarks": [
                {"name": "good", "stats": {"mean": 0.2}},
                {"name": "no-stats"},
                {"name": "bad-mean", "stats": {"mean": "slow"}},
            ],
        }))
        [point] = load_trajectory(tmp_path)
        assert point.means == {"good": 0.2}

    def test_no_snapshots_is_an_error(self, tmp_path):
        with pytest.raises(ExperimentError, match="BENCH_"):
            load_trajectory(tmp_path)

    def test_odd_filename_stamp_is_kept_verbatim(self, tmp_path):
        _snapshot(tmp_path, "custom", {"a": 1.0})
        [point] = load_trajectory(tmp_path)
        assert point.stamp == "custom"


class TestTrajectoryTable:
    def _points(self):
        return [
            BenchPoint(stamp="0101-0900", means={"alpha": 0.5, "beta": 2.0}),
            BenchPoint(stamp="0201-0900", means={"alpha": 0.25}),
        ]

    def test_rows_union_names_and_mark_gaps(self):
        headers, rows = trajectory_table(self._points())
        assert headers == ["benchmark", "0101-0900", "0201-0900"]
        assert rows == [
            ["alpha", "2.00/s", "4.00/s"],
            ["beta", "0.5000/s", "—"],  # beta never ran in snapshot 2
        ]

    def test_filter_is_case_insensitive_substring(self):
        _, rows = trajectory_table(self._points(), pattern="ALPH")
        assert [r[0] for r in rows] == ["alpha"]

    def test_last_keeps_newest_snapshots(self):
        headers, rows = trajectory_table(self._points(), last=1)
        assert headers == ["benchmark", "0201-0900"]
        assert rows == [["alpha", "4.00/s"]]  # beta's row drops entirely

    def test_no_matching_benchmark_is_an_error(self):
        with pytest.raises(ExperimentError, match="zeta"):
            trajectory_table(self._points(), pattern="zeta")

    def test_fast_benchmarks_render_integral_ops(self):
        _, rows = trajectory_table(
            [BenchPoint(stamp="s", means={"fast": 0.001})]
        )
        assert rows == [["fast", "1000/s"]]
