"""Unit tests for scenario builders."""

from __future__ import annotations

from repro.experiments.scenarios import (
    fixed_three_job,
    random_fifteen_job,
    random_five_job,
    random_ten_job,
)


class TestFixed:
    def test_paper_schedule(self):
        specs = fixed_three_job()
        assert [(s.model_key, s.submit_time) for s in specs] == [
            ("vae@pytorch", 0.0),
            ("mnist@pytorch", 40.0),
            ("mnist@tensorflow", 80.0),
        ]


class TestRandom:
    def test_sizes(self):
        assert len(random_five_job()) == 5
        assert len(random_ten_job()) == 10
        assert len(random_fifteen_job()) == 15

    def test_arrival_window(self):
        for specs in (random_five_job(), random_ten_job(), random_fifteen_job()):
            assert all(0.0 <= s.submit_time <= 200.0 for s in specs)

    def test_seeded_reproducibility(self):
        a = random_ten_job(seed=5)
        b = random_ten_job(seed=5)
        assert [(s.model_key, s.submit_time) for s in a] == [
            (s.model_key, s.submit_time) for s in b
        ]

    def test_different_seeds_differ(self):
        a = random_ten_job(seed=5)
        b = random_ten_job(seed=6)
        assert [s.submit_time for s in a] != [s.submit_time for s in b]

    def test_labels_sequential(self):
        specs = random_fifteen_job()
        assert [s.label for s in specs] == [f"Job-{i}" for i in range(1, 16)]

    def test_five_job_uses_paper_mix(self):
        keys = {s.model_key for s in random_five_job()}
        assert keys == {
            "lstm_cfc@tensorflow",
            "vae@pytorch",
            "vae@tensorflow",
            "mnist@pytorch",
            "gru@tensorflow",
        }


class TestMultiTenant:
    def test_two_unequal_weight_tenants(self):
        from repro.experiments.scenarios import multi_tenant

        sc = multi_tenant(seed=3)
        assert sc.tenant_names == ("batch", "interactive")
        assert sc.admission == "wfq"
        interactive = [s for s in sc.specs if s.tenant == "interactive"]
        batch = [s for s in sc.specs if s.tenant == "batch"]
        assert len(interactive) + len(batch) == len(sc.specs)
        assert len(batch) > len(interactive)  # the flood vs the light tenant
        assert all(s.weight == 4.0 for s in interactive)
        assert all(s.weight == 1.0 for s in batch)

    def test_deterministic_tenant_assignment(self):
        from repro.experiments.scenarios import multi_tenant

        a = multi_tenant(seed=1)
        b = multi_tenant(seed=1)
        assert [(s.label, s.tenant, s.weight) for s in a.specs] == [
            (s.label, s.tenant, s.weight) for s in b.specs
        ]


class TestElasticCluster:
    def test_shape_is_undersized_and_recommends_autoscale(self):
        from repro.experiments.scenarios import elastic_cluster

        sc = elastic_cluster(seed=3)
        assert sc.n_workers == 2
        assert sc.autoscale == "queue_depth"
        assert all(n is not None for n in sc.max_containers)

    def test_seeded_reproducibility(self):
        from repro.experiments.scenarios import elastic_cluster

        a, b = elastic_cluster(seed=4), elastic_cluster(seed=4)
        assert [s.submit_time for s in a.specs] == [
            s.submit_time for s in b.specs
        ]
