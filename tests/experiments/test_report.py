"""Unit tests for ASCII report rendering."""

from __future__ import annotations

import numpy as np

from repro.experiments.report import (
    render_bars,
    render_header,
    render_sparkline,
    render_table,
)


class TestTable:
    def test_aligned_columns(self):
        text = render_table(["name", "value"], [["a", 1.0], ["bbbb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "22.5" in lines[3]

    def test_float_formatting(self):
        text = render_table(["x"], [[3.14159]], float_fmt="{:.3f}")
        assert "3.142" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestSparkline:
    def test_length_capped_at_width(self):
        line = render_sparkline(np.linspace(0, 1, 500), width=40)
        assert len(line) == 40

    def test_short_input_kept(self):
        line = render_sparkline(np.array([0.0, 1.0]))
        assert len(line) == 2
        assert line[0] == " " and line[-1] == "█"

    def test_flat_series_renders(self):
        line = render_sparkline(np.full(10, 0.5))
        assert len(line) == 10

    def test_empty(self):
        assert render_sparkline(np.array([])) == ""

    def test_explicit_bounds(self):
        line = render_sparkline(np.array([0.5]), vmin=0.0, vmax=1.0)
        assert line != "█"


class TestBars:
    def test_bar_lengths_scale(self):
        text = render_bars(["a", "b"], [10.0, 100.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 1
        assert lines[1].count("█") == 10

    def test_values_printed(self):
        text = render_bars(["x"], [42.0])
        assert "42.0" in text

    def test_empty(self):
        assert render_bars([], []) == ""


class TestHeader:
    def test_contains_title(self):
        text = render_header("Figure 3")
        assert "Figure 3" in text
        assert text.startswith("=")
