"""Tests for the executable reproduction scorecard."""

from __future__ import annotations

import pytest

from repro.experiments.validate import Check, validate_reproduction


@pytest.fixture(scope="module")
def checks():
    return validate_reproduction()


class TestValidateReproduction:
    def test_covers_all_experiments(self, checks):
        exps = {c.exp for c in checks}
        for expected in (
            "Fig.1", "Fig.3", "Tab.2", "Fig.7", "Fig.8", "Fig.9",
            "Fig.12", "Fig.13", "Fig.14", "Fig.15/16", "Fig.17",
        ):
            assert expected in exps

    def test_all_checks_pass(self, checks):
        failed = [c for c in checks if not c.passed]
        assert not failed, "\n".join(
            f"{c.exp}: {c.claim} — {c.detail}" for c in failed
        )

    def test_details_are_informative(self, checks):
        assert all(c.detail for c in checks)

    def test_check_is_frozen(self):
        check = Check("x", "y", True, "z")
        with pytest.raises(Exception):
            check.passed = False  # type: ignore[misc]

    def test_cli_validate_exit_code(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "checks passed" in out
