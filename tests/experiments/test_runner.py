"""Unit tests for the scenario runner."""

from __future__ import annotations

import pytest

from repro.baselines.na import NAPolicy
from repro.config import SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.errors import ExperimentError
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fixed_three_job
from repro.workloads.generator import WorkloadGenerator


class TestRunScenario:
    def test_empty_specs_rejected(self):
        with pytest.raises(ExperimentError):
            run_scenario([], NAPolicy())

    def test_all_jobs_complete(self):
        result = run_scenario(
            fixed_three_job(), NAPolicy(), SimulationConfig(seed=0, trace=False)
        )
        assert set(result.completion_times()) == {"Job-1", "Job-2", "Job-3"}
        assert result.makespan > 0

    def test_policy_name_propagates(self):
        result = run_scenario(
            fixed_three_job(), NAPolicy(), SimulationConfig(seed=0, trace=False)
        )
        assert result.policy_name == "NA"

    def test_horizon_stops_early(self):
        from repro.errors import MetricsError

        cfg = SimulationConfig(seed=0, trace=False, horizon=100.0)
        # No job of the fixed schedule can finish within 100 s, so the
        # run stops at the horizon and summarization reports no data —
        # it must not hang or overrun the horizon.
        with pytest.raises(MetricsError):
            run_scenario(fixed_three_job(), NAPolicy(), cfg)

    def test_traces_available_per_label(self):
        result = run_scenario(
            fixed_three_job(), NAPolicy(), SimulationConfig(seed=0, trace=False)
        )
        trace = result.trace("Job-1")
        assert not trace.cpu_usage.empty

    def test_flowcon_and_na_share_workload(self):
        specs = fixed_three_job()
        na = run_scenario(specs, NAPolicy(), SimulationConfig(seed=3, trace=False))
        fc = run_scenario(
            specs, FlowConPolicy(), SimulationConfig(seed=3, trace=False)
        )
        assert set(na.completion_times()) == set(fc.completion_times())

    def test_single_job_runs(self):
        specs = WorkloadGenerator.fixed([("gru@tensorflow", 0.0)])
        result = run_scenario(
            specs, NAPolicy(), SimulationConfig(seed=0, trace=False)
        )
        assert result.completion_times()["Job-1"] > 0
