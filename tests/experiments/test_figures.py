"""Integration tests for the figure generators (shape assertions).

These tests run the real scenarios and assert the *shapes* the paper
reports — they are the executable form of EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figures as F
from repro.experiments import tables as T


@pytest.fixture(scope="module")
def fig3():
    return F.fig3_fixed_alpha5(seed=1)


@pytest.fixture(scope="module")
def fig12():
    return F.fig12_ten_jobs(seed=42)


class TestFig1:
    def test_curves_are_concave_early(self):
        data = F.fig1_training_progress()
        # Every model achieves clearly more than "linear" progress early;
        # the VAE is the extreme case per our calibration.
        for name, (t, v) in data.curves.items():
            assert data.fraction_at(name, 0.5) > 0.5
        assert data.fraction_at("VAE (Pytorch)", 0.15) > 0.99

    def test_five_models_present(self):
        data = F.fig1_training_progress()
        assert len(data.curves) == 5

    def test_curves_normalized(self):
        data = F.fig1_training_progress()
        for t, v in data.curves.values():
            assert t[0] == 0.0 and t[-1] == 1.0
            assert v[0] == pytest.approx(0.0, abs=1e-6)
            assert v[-1] == pytest.approx(1.0, abs=1e-6)


class TestFixedSweeps:
    def test_fig3_flowcon_never_hurts_makespan_much(self, fig3):
        na = fig3.makespan["NA"]
        for label, ms in fig3.makespan.items():
            if label == "NA":
                continue
            # Paper: FlowCon improves makespan 1–5 %; we accept ±1 %.
            assert ms <= na * 1.01

    def test_fig3_mnist_tf_speeds_up_across_intervals(self, fig3):
        for label in fig3.completion:
            if label == "NA":
                continue
            assert fig3.reduction_vs_na(label, "Job-3") > 5.0

    def test_fig4_reductions_positive(self):
        data = F.fig4_fixed_alpha10(seed=1)
        for label in data.completion:
            if label != "NA":
                assert data.reduction_vs_na(label, "Job-3") > 0.0

    def test_fig5_all_alphas_beat_na(self):
        data = F.fig5_fixed_itval20(seed=1)
        for label in data.completion:
            if label != "NA":
                assert data.reduction_vs_na(label, "Job-3") > 0.0


class TestTable2:
    def test_reduction_decreases_with_interval(self):
        table = T.table2_mnist_reduction(seed=1)
        values = [table.by_itval[k] for k in ("20", "30", "40", "50", "60")]
        # Paper trend: larger itval ⇒ smaller reduction (monotone-ish).
        assert values[0] >= values[-1]
        assert all(v > 0 for v in values)

    def test_all_alpha_entries_positive(self):
        table = T.table2_mnist_reduction(seed=1)
        assert all(v > 0 for v in table.by_alpha.values())


class TestTraceFigures:
    def test_fig7_converged_vae_near_floor(self):
        data = F.fig7_cpu_flowcon_3job(seed=1)
        times, limits = data.limits["Job-1"]
        # By late run the VAE's limit sits at the CL floor (≤ 1/(β·n)=0.25
        # for n=2; 1/6≈0.17 for n=3).
        late = limits[times > 150.0]
        assert late.size > 0
        assert late.min() <= 0.26

    def test_fig8_na_equal_shares(self):
        data = F.fig8_cpu_na_3job(seed=1)
        t1, u1 = data.usage["Job-1"]
        # In the 3-job overlap window VAE's usage sits near 1/3.
        window = u1[(t1 > 90) & (t1 < 140)]
        assert np.median(window) == pytest.approx(1 / 3, abs=0.08)

    def test_fig15_smoother_than_fig16(self):
        fc = F.fig15_cpu_flowcon_10job(seed=42)
        na = F.fig16_cpu_na_10job(seed=42)
        fc_jitter = np.mean(list(fc.jitter.values()))
        na_jitter = np.mean(list(na.jitter.values()))
        assert fc_jitter < na_jitter

    def test_fig11_demand_limited_job_below_cap(self):
        data = F.fig11_cpu_na_5job(seed=42)
        labels = [
            label for label, name in
            (("%s" % k, v) for k, v in data.run.manager.placements.items())
        ]
        # The LSTM-CFC cannot exceed its 0.35 demand even under NA.
        cfc_label = next(
            lab for lab, name in
            ((t.label, t.image) for t in data.run.recorder.traces.values())
            if "lstm_cfc" in name
        )
        _, usage = data.usage[cfc_label]
        assert usage.max() <= 0.40


class TestScaleFigures:
    def test_fig9_flowcon_wins_majority(self):
        data = F.fig9_random_five(seed=42)
        for label in data.completion:
            if label == "NA":
                continue
            assert data.wins(label) >= 3  # paper: 4–5 of 5

    def test_fig12_wins_at_least_nine(self, fig12):
        (config,) = [k for k in fig12.completion if k != "NA"]
        assert fig12.wins(config) >= 9  # paper: 9/10

    def test_fig12_makespan_preserved(self, fig12):
        (config,) = [k for k in fig12.completion if k != "NA"]
        assert fig12.makespan[config] <= fig12.makespan["NA"] * 1.01

    def test_fig17_wins_majority_and_small_losses(self):
        data = F.fig17_fifteen_jobs(seed=42)
        (config,) = [k for k in data.completion if k != "NA"]
        reductions = data.reductions(config)
        assert data.wins(config) >= 10  # paper: 11/15
        assert min(reductions.values()) > -10.0  # paper: worst loss 5.7 %


class TestGrowthFigures:
    def test_fig13_loser_identified(self):
        data = F.fig13_growth_comparison(seed=42)
        assert data.flowcon_completion >= data.na_completion * 0.99

    def test_fig14_winner_identified(self):
        data = F.fig14_growth_comparison(seed=42)
        assert data.flowcon_completion < data.na_completion

    def test_growth_traces_nonempty(self):
        data = F.fig14_growth_comparison(seed=42)
        assert data.flowcon[0].size > 3
        assert data.na[0].size > 3
