"""Ablation tests: each DESIGN.md §5 switch changes behaviour as claimed."""

from __future__ import annotations

import pytest

from repro.baselines.na import NAPolicy
from repro.config import FlowConConfig, SimulationConfig
from repro.containers.allocator import AllocationMode
from repro.core.policy import FlowConPolicy
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fixed_three_job


CFG = SimulationConfig(seed=1, trace=False)


def _run(flowcon_cfg=None, sim_cfg=CFG, policy=None):
    pol = policy if policy is not None else FlowConPolicy(
        flowcon_cfg if flowcon_cfg is not None else FlowConConfig()
    )
    return run_scenario(fixed_three_job(), pol, sim_cfg)


class TestBackoffAblation:
    def test_backoff_reduces_algorithm_runs(self):
        with_backoff = FlowConPolicy(FlowConConfig(backoff_enabled=True))
        without = FlowConPolicy(FlowConConfig(backoff_enabled=False))
        r1 = _run(policy=with_backoff)
        r2 = _run(policy=without)
        assert with_backoff.executor.runs < without.executor.runs
        # Outcomes stay comparable: back-off only trims overhead.
        t1 = r1.completion_times()
        t2 = r2.completion_times()
        for label in t1:
            assert abs(t1[label] - t2[label]) / t2[label] < 0.10


class TestListenerAblation:
    def test_listeners_cut_reaction_latency(self):
        with_listeners = _run(FlowConConfig(listeners_enabled=True))
        without = _run(FlowConConfig(listeners_enabled=False, itval=60.0))
        # Without listeners and with a long interval, the late MNIST-TF
        # waits up to a full interval before FlowCon reacts.
        assert (
            with_listeners.completion_times()["Job-3"]
            < without.completion_times()["Job-3"]
        )

    def test_polling_listeners_close_to_event_driven(self):
        event = _run(FlowConConfig(event_driven_listeners=True))
        polled = _run(
            FlowConConfig(
                event_driven_listeners=False, listener_poll_interval=1.0
            )
        )
        for label in event.completion_times():
            a = event.completion_times()[label]
            b = polled.completion_times()[label]
            assert abs(a - b) / a < 0.05


class TestFloorAblation:
    def test_floor_bounds_converged_job_limit(self):
        floored = _run(FlowConConfig(beta=2.0))
        _, limits = floored.trace("Job-1").cpu_limit.arrays()
        # With n ≤ 3 containers the floor is at least 1/(2·3).
        assert limits.min() >= 1.0 / 6.0 - 1e-9

    def test_no_floor_lets_limit_collapse(self):
        unfloored = _run(FlowConConfig(beta=None))
        _, limits = unfloored.trace("Job-1").cpu_limit.arrays()
        # Without line 22 the converged VAE's limit collapses toward 0 —
        # the "abnormal behavior caused by limited resources" the floor
        # prevents.
        assert limits.min() < 0.05

    def test_no_floor_stalls_converged_job_under_contention(self):
        unfloored = _run(FlowConConfig(beta=None))
        floored = _run(FlowConConfig(beta=2.0))
        # During the 3-job contention window the unfloored VAE is starved
        # well below the floored one.
        u = unfloored.trace("Job-1").cpu_usage
        f = floored.trace("Job-1").cpu_usage
        assert u.mean(100.0, 150.0) < f.mean(100.0, 150.0) * 0.6


class TestSoftLimitAblation:
    def test_hard_limits_waste_capacity(self):
        """§5.4 technique (1): a capped job's unused capacity is usable by
        others only under soft limits.

        Construction: a demand-limited LSTM-CFC (0.35) partitioned
        50/50 with a compute-bound MNIST.  Soft: MNIST soaks the CFC's
        idle 0.15.  Hard: it cannot.
        """
        from repro.baselines.static import StaticPartitionPolicy
        from repro.workloads.generator import WorkloadGenerator

        specs = WorkloadGenerator.fixed(
            [("lstm_cfc@tensorflow", 0.0), ("mnist@pytorch", 0.0)]
        )
        soft = run_scenario(
            specs,
            StaticPartitionPolicy(),
            CFG.with_params(allocation_mode=AllocationMode.SOFT),
        )
        hard = run_scenario(
            specs,
            StaticPartitionPolicy(),
            CFG.with_params(allocation_mode=AllocationMode.HARD),
        )
        # MNIST (Job-2) is the beneficiary of the reclaimed capacity.
        assert (
            soft.completion_times()["Job-2"]
            < hard.completion_times()["Job-2"] * 0.85
        )


class TestNlLiteralAblation:
    def test_literal_line26_starves_small_metric_jobs(self):
        default = _run(FlowConConfig(nl_full_limit=True))
        literal = _run(FlowConConfig(nl_full_limit=False))
        # The literal G/ΣG reading hands the node to the VAE's huge loss
        # scale early on; MNIST-TF (Job-3) fares worse (DESIGN.md note 1/2).
        assert (
            literal.completion_times()["Job-3"]
            >= default.completion_times()["Job-3"] * 0.98
        )


class TestContentionAblation:
    def test_ideal_substrate_conserves_makespan_exactly(self):
        from repro.cluster.contention import ContentionModel

        ideal = CFG.with_params(contention=ContentionModel.ideal())
        na = run_scenario(fixed_three_job(), NAPolicy(), ideal)
        fc = run_scenario(fixed_three_job(), FlowConPolicy(), ideal)
        # Work conservation: with zero interference both policies finish
        # the same total work at full utilization → identical makespan.
        assert fc.makespan == pytest.approx(na.makespan, rel=1e-6)
