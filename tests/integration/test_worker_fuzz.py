"""Property-based fuzzing of the worker's settlement arithmetic.

Hypothesis drives random sequences of launches, limit updates and time
advances against an ideal (no-interference) worker, then checks the
conservation laws that make the analytic simulation trustworthy:

* CPU is never oversubscribed;
* delivered work equals accounted cgroup CPU-seconds (work conservation);
* no job's work exceeds its total;
* a saturated node's allocations sum to exactly its capacity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.contention import ContentionModel
from repro.cluster.worker import Worker
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job

# One fuzz operation: (kind, value)
#   kind 0 → launch a job with total_work = 20 + value·180
#   kind 1 → advance time by value·30 seconds
#   kind 2 → update a random live container's limit to 0.05 + value·0.95
op_strategy = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.floats(min_value=0.0, max_value=1.0),
)


class TestWorkerFuzz:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(op_strategy, min_size=1, max_size=25))
    def test_conservation_invariants(self, ops):
        sim = Simulator(seed=1, trace=False)
        worker = Worker(sim, contention=ContentionModel.ideal())
        launched = []

        for kind, value in ops:
            if kind == 0:
                job = make_linear_job(
                    f"job-{len(launched)}", total_work=20.0 + value * 180.0
                )
                launched.append((job, worker.launch(job)))
            elif kind == 1:
                sim.run(until=sim.now + value * 30.0)
            elif kind == 2 and launched:
                idx = int(value * (len(launched) - 1))
                container = launched[idx][1]
                if container.running:
                    worker.update_limit(
                        container.cid, 0.05 + value * 0.95
                    )

            # Invariant: never oversubscribed.
            assert worker.load() <= worker.capacity + 1e-9
            # Invariant: saturated when any compute-bound job is running.
            if worker.running_containers():
                assert worker.load() == pytest.approx(worker.capacity)

        worker.settle()
        for job, container in launched:
            # Work conservation: cgroup CPU-seconds == delivered work
            # (ideal contention: every allocated cpu-second is work).
            assert container.cgroup.cpu_seconds() == pytest.approx(
                job.work_done, abs=1e-6
            )
            assert job.work_done <= job.total_work + 1e-9
            if container.exited:
                assert job.finished

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=1.0, max_value=100.0),
                    min_size=1, max_size=8))
    def test_total_work_equals_makespan_when_saturated(self, works):
        """With an ideal substrate and all jobs at t=0, the makespan is
        exactly the total work (the node is never idle)."""
        sim = Simulator(seed=2, trace=False)
        worker = Worker(sim, contention=ContentionModel.ideal())
        for i, work in enumerate(works):
            worker.launch(make_linear_job(f"j{i}", total_work=work))
        end = sim.run_until_empty()
        assert end == pytest.approx(sum(works), rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.05, max_value=1.0),
                 min_size=2, max_size=6)
    )
    def test_limits_never_break_completion(self, limits):
        """Whatever limits are applied, every job eventually completes
        (soft limits + work conservation guarantee liveness)."""
        sim = Simulator(seed=3, trace=False)
        worker = Worker(sim, contention=ContentionModel.ideal())
        containers = [
            worker.launch(make_linear_job(f"j{i}", total_work=30.0))
            for i in range(len(limits))
        ]
        for container, limit in zip(containers, limits):
            worker.update_limit(container.cid, limit)
        sim.run_until_empty()
        assert all(c.exited for c in containers)
