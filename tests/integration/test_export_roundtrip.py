"""Integration: exporting real run data (the archival path benches use)."""

from __future__ import annotations

import json

import numpy as np

from repro.baselines.na import NAPolicy
from repro.config import SimulationConfig
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fixed_three_job
from repro.metrics.export import series_to_csv, summary_to_json


class TestExportRoundtrip:
    def test_run_traces_export_to_csv(self):
        result = run_scenario(
            fixed_three_job(), NAPolicy(), SimulationConfig(seed=1, trace=False)
        )
        csv = series_to_csv(
            {
                trace.label: trace.cpu_usage
                for trace in result.recorder.traces.values()
            },
            grid_step=10.0,
        )
        lines = csv.strip().splitlines()
        header = lines[0].split(",")
        assert header[0] == "time"
        assert set(header[1:]) == {"Job-1", "Job-2", "Job-3"}
        # Values parse back as floats and stay within [0, 1].
        for line in lines[1:]:
            for cell in line.split(",")[1:]:
                if cell:
                    assert 0.0 <= float(cell) <= 1.0 + 1e-9

    def test_run_summary_exports_to_json(self):
        result = run_scenario(
            fixed_three_job(), NAPolicy(), SimulationConfig(seed=1, trace=False)
        )
        payload = json.loads(summary_to_json(result.summary, policy="NA"))
        assert payload["policy"] == "NA"
        assert len(payload["jobs"]) == 3
        assert payload["makespan"] == result.makespan
        # Submission order preserved.
        assert [j["label"] for j in payload["jobs"]] == [
            "Job-1", "Job-2", "Job-3",
        ]

    def test_csv_grid_spans_run(self):
        result = run_scenario(
            fixed_three_job(), NAPolicy(), SimulationConfig(seed=1, trace=False)
        )
        trace = result.trace("Job-1")
        csv = series_to_csv({"j1": trace.cpu_usage}, grid_step=5.0)
        times = np.array(
            [float(line.split(",")[0]) for line in csv.strip().splitlines()[1:]]
        )
        assert times[0] <= trace.cpu_usage.t_start + 5.0
        assert times[-1] >= trace.cpu_usage.t_end - 5.0
