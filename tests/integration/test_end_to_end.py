"""End-to-end shape tests: the paper's headline claims as assertions.

These are the highest-level checks in the suite — each corresponds to a
sentence in the paper's abstract or §5 prose.
"""

from __future__ import annotations

import pytest

from repro.analysis.compare import compare_runs
from repro.baselines.na import NAPolicy
from repro.baselines.slaq import SlaqLikePolicy
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fixed_three_job, random_ten_job


@pytest.fixture(scope="module")
def fixed_pair():
    specs = fixed_three_job()
    cfg = SimulationConfig(seed=1, trace=False)
    na = run_scenario(specs, NAPolicy(), cfg)
    fc = run_scenario(
        specs, FlowConPolicy(FlowConConfig(alpha=0.05, itval=20.0)), cfg
    )
    return na, fc


class TestFixedSchedule:
    def test_mnist_tf_improves_substantially(self, fixed_pair):
        na, fc = fixed_pair
        report = compare_runs(na.summary, fc.summary)
        # Paper: 21–32 % reduction territory for MNIST-TF.
        assert report.reductions["Job-3"] > 10.0

    def test_makespan_not_sacrificed(self, fixed_pair):
        na, fc = fixed_pair
        report = compare_runs(na.summary, fc.summary)
        assert report.makespan_reduction > -1.0

    def test_overlap_shrinks(self, fixed_pair):
        # §5.3: "FlowCon decreases the overlap of three jobs".
        na, fc = fixed_pair
        na_overlap = na.summary.overlap("Job-1", "Job-2", "Job-3")
        fc_overlap = fc.summary.overlap("Job-1", "Job-2", "Job-3")
        assert fc_overlap < na_overlap

    def test_vae_limit_floored_at_quarter(self, fixed_pair):
        # §5.3: VAE's limit set to 0.25 once it converges.
        _, fc = fixed_pair
        trace = fc.trace("Job-1")
        _, limits = trace.cpu_limit.arrays()
        assert limits.min() == pytest.approx(0.25, abs=0.09)


class TestScale:
    def test_ten_jobs_headline(self):
        specs = random_ten_job(seed=42)
        cfg = SimulationConfig(seed=42, trace=False)
        na = run_scenario(specs, NAPolicy(), cfg)
        fc = run_scenario(
            specs, FlowConPolicy(FlowConConfig(alpha=0.10, itval=20.0)), cfg
        )
        report = compare_runs(na.summary, fc.summary)
        assert report.wins >= 9           # paper: 9 of 10 jobs
        assert report.makespan_reduction > -1.0
        assert report.best[1] > 10.0      # double-digit best win


class TestAgainstSlaq:
    def test_flowcon_beats_slow_epoch_slaq_on_late_arrival(self):
        """§6's critique: "SLAQ fails to allocate the resources at
        real-time" — with a coarse scheduling epoch the late-arriving
        MNIST-TF waits for the next epoch before receiving resources,
        while FlowCon's listeners react instantly."""
        specs = fixed_three_job()
        cfg = SimulationConfig(seed=1, trace=False)
        slaq = run_scenario(specs, SlaqLikePolicy(epoch=60.0), cfg)
        fc = run_scenario(specs, FlowConPolicy(), cfg)
        assert (
            fc.completion_times()["Job-3"]
            < slaq.completion_times()["Job-3"]
        )


class TestDeterminism:
    def test_same_seed_identical_results(self):
        specs = fixed_three_job()
        cfg = SimulationConfig(seed=9, trace=False)
        a = run_scenario(specs, FlowConPolicy(), cfg)
        b = run_scenario(specs, FlowConPolicy(), cfg)
        assert a.completion_times() == b.completion_times()
        assert a.makespan == b.makespan

    def test_different_seed_changes_jitter_not_shape(self):
        specs = fixed_three_job()
        a = run_scenario(specs, NAPolicy(), SimulationConfig(seed=1, trace=False))
        b = run_scenario(specs, NAPolicy(), SimulationConfig(seed=2, trace=False))
        # Jitter differs → times differ slightly but within a few %.
        for label in a.completion_times():
            ra = a.completion_times()[label]
            rb = b.completion_times()[label]
            assert abs(ra - rb) / ra < 0.10
