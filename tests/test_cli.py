"""Unit tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_parses_number_and_seed(self):
        args = build_parser().parse_args(["fig", "12", "--seed", "7"])
        assert args.number == 12 and args.seed == 7

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.jobs == 10 and args.alpha == 0.10
        assert args.placement == "spread" and args.rebalance == "none"

    def test_rebalance_choices(self):
        args = build_parser().parse_args(
            ["compare", "--workers", "2", "--rebalance", "progress"]
        )
        assert args.rebalance == "progress"
        args = build_parser().parse_args(
            ["sweep", "--workers", "2", "--rebalance", "migrate"]
        )
        assert args.rebalance == "migrate"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--rebalance", "gandiva"])

    def test_admission_and_autoscale_choices(self):
        args = build_parser().parse_args(["compare"])
        assert args.admission == "fifo" and args.autoscale == "none"
        args = build_parser().parse_args(
            ["compare", "--admission", "wfq", "--autoscale", "queue_depth"]
        )
        assert args.admission == "wfq"
        assert args.autoscale == "queue_depth"
        args = build_parser().parse_args(
            ["sweep", "--admission", "sjf", "--autoscale", "progress"]
        )
        assert args.admission == "sjf"
        assert args.autoscale == "progress"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--admission", "lifo"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--autoscale", "manual"])

    def test_profile_flag_parses(self):
        assert build_parser().parse_args(["compare"]).profile is False
        assert build_parser().parse_args(
            ["compare", "--profile"]
        ).profile is True
        assert build_parser().parse_args(
            ["sweep", "--profile"]
        ).profile is True

    def test_failures_spec_parses(self):
        args = build_parser().parse_args(["compare"])
        assert args.failures == "none"
        args = build_parser().parse_args(
            ["compare", "--failures", "rolling:checkpoint(60)"]
        )
        assert args.failures == "rolling:checkpoint(60)"
        args = build_parser().parse_args(
            ["sweep", "--failures", "az_outage"]
        )
        assert args.failures == "az_outage"

    def test_fabric_spec_parses(self):
        args = build_parser().parse_args(["compare"])
        assert args.fabric == "ideal"
        args = build_parser().parse_args(
            ["compare", "--fabric", "partition(30..90):retry(max=5,base=0.5)"]
        )
        assert args.fabric == "partition(30..90):retry(max=5,base=0.5)"
        args = build_parser().parse_args(
            ["sweep", "--fabric", "drop(0.05)+delay(exp,0.2)"]
        )
        assert args.fabric == "drop(0.05)+delay(exp,0.2)"

    def test_shards_and_fleet_mode_parse(self):
        args = build_parser().parse_args(["compare"])
        assert args.shards == 1 and args.fleet_mode is False
        args = build_parser().parse_args(
            ["compare", "--fleet-mode", "--shards", "4"]
        )
        assert args.shards == 4 and args.fleet_mode is True
        args = build_parser().parse_args(
            ["sweep", "--fleet-mode", "--shards", "2"]
        )
        assert args.shards == 2 and args.fleet_mode is True

    def test_bench_report_flags_parse(self):
        args = build_parser().parse_args(["bench-report"])
        assert args.dir == "benchmarks"
        assert args.filter is None and args.last is None
        args = build_parser().parse_args(
            ["bench-report", "--dir", "x", "--filter", "fleet", "--last", "3"]
        )
        assert args.dir == "x" and args.filter == "fleet" and args.last == 3

    def test_tenant_weights_parse(self):
        args = build_parser().parse_args(
            ["compare", "--tenant-weights", "interactive=4", "batch=1"]
        )
        assert args.tenant_weights == ["interactive=4", "batch=1"]

    def test_bad_tenant_weights_rejected(self):
        from repro.cli import _parse_tenant_weights
        from repro.errors import ExperimentError

        assert _parse_tenant_weights(["a=2", "b=0.5"]) == {
            "a": 2.0, "b": 0.5,
        }
        for bad in (["a"], ["=2"], ["a=0"], ["a=-1"], ["a=x"]):
            with pytest.raises(ExperimentError):
                _parse_tenant_weights(bad)

    def test_slots_flag_parses(self):
        args = build_parser().parse_args(["compare", "--slots", "2"])
        assert args.slots == 2
        args = build_parser().parse_args(["sweep", "--slots", "3"])
        assert args.slots == 3
        assert build_parser().parse_args(["compare"]).slots is None

    def test_more_tenants_than_jobs_is_a_clean_cli_error(self, capsys):
        # 3 jobs, 4 tenants: must exit via the CLI error path, not a
        # raw MetricsError traceback from the per-tenant report.
        assert main([
            "compare", "--jobs", "3", "--seed", "1",
            "--tenant-weights", "a=1", "b=1", "c=1", "d=1",
        ]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "tenant" in err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig 12" in out and "table 2" in out

    def test_zoo(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "VAE (Pytorch)" in out

    def test_fig_unknown_number_errors(self, capsys):
        assert main(["fig", "99"]) == 2
        assert "no figure 99" in capsys.readouterr().err

    def test_table_unknown_number_errors(self, capsys):
        assert main(["table", "7"]) == 2

    def test_fig1(self, capsys):
        assert main(["fig", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_fig3(self, capsys):
        assert main(["fig", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "NA" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "reduction %" in out

    def test_compare_fixed_three(self, capsys):
        assert main([
            "compare", "--jobs", "3", "--alpha", "0.05",
            "--itval", "20", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "wins" in out and "makespan" in out

    def test_sweep(self, capsys):
        assert main([
            "sweep", "--alphas", "0.05", "--itvals", "20", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "itval=20" in out

    def test_unknown_failures_spec_is_a_clean_cli_error(self, capsys):
        # --failures is a free-form spec (durability suffixes make
        # choices= impossible), so validation happens in the run path
        # and must surface as a clean exit-2 error, not a traceback.
        assert main([
            "compare", "--jobs", "3", "--seed", "1",
            "--failures", "meteor-strike",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "meteor-strike" in err and "'rolling'" in err

    def test_unknown_fabric_spec_is_a_clean_cli_error(self, capsys):
        # --fabric is a free-form fault-plan expression, so validation
        # happens in the run path and must surface as a clean exit-2
        # error naming the registries, not a traceback.
        assert main([
            "compare", "--jobs", "3", "--seed", "1",
            "--fabric", "carrier-pigeon",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "carrier-pigeon" in err and "'partition'" in err

    def test_compare_with_fabric(self, capsys):
        assert main([
            "compare", "--jobs", "3", "--seed", "1", "--workers", "2",
            "--fabric", "drop(0.2)+delay(const,0.05):retry(max=6,base=0.3)",
        ]) == 0
        out = capsys.readouterr().out
        assert "fabric:" in out and "resends" in out

    def test_compare_with_failures(self, capsys):
        assert main([
            "compare", "--jobs", "3", "--seed", "1", "--workers", "2",
            "--failures", "rolling:checkpoint",
        ]) == 0
        out = capsys.readouterr().out
        assert "failures:" in out and "crash-restarts" in out

    def test_compare_profile_dumps_cprofile_to_stderr(self, capsys):
        assert main([
            "compare", "--jobs", "3", "--alpha", "0.05",
            "--itval", "20", "--seed", "1", "--profile",
        ]) == 0
        captured = capsys.readouterr()
        assert "wins" in captured.out  # the command output stays on stdout
        assert "cumulative" in captured.err  # pstats column header
        assert "function calls" in captured.err

    def test_sweep_profile_dumps_cprofile_to_stderr(self, capsys):
        assert main([
            "sweep", "--alphas", "0.05", "--itvals", "20", "--seed", "1",
            "--profile",
        ]) == 0
        captured = capsys.readouterr()
        assert "itval=20" in captured.out
        assert "cumulative" in captured.err

    def test_compare_sharded_matches_serial(self, capsys):
        # The sharded run is pinned bit-identical, so the rendered
        # comparison must be byte-for-byte the serial one.
        assert main(["compare", "--jobs", "3", "--seed", "1",
                     "--workers", "2"]) == 0
        serial = capsys.readouterr().out
        assert main([
            "compare", "--jobs", "3", "--seed", "1", "--workers", "2",
            "--fleet-mode", "--shards", "2",
        ]) == 0
        assert capsys.readouterr().out == serial
        assert "wins" in serial

    def test_nonpositive_shards_is_a_clean_cli_error(self, capsys):
        assert main([
            "compare", "--jobs", "3", "--seed", "1", "--shards", "0",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "shards" in err

    def test_shards_without_fleet_mode_is_a_clean_cli_error(self, capsys):
        # --shards > 1 slices the fused arena; composing it with the
        # serial sampling path must fail loudly, not silently degrade.
        assert main([
            "sweep", "--alphas", "0.05", "--itvals", "20", "--seed", "1",
            "--shards", "4",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "fleet_mode" in err and "--fleet-mode" in err

    def test_bench_report_renders_trajectory(self, tmp_path, capsys):
        import json

        for stamp, mean in (("20260101-000000", 0.5),
                            ("20260202-000000", 0.25)):
            (tmp_path / f"BENCH_{stamp}.json").write_text(json.dumps({
                "benchmarks": [
                    {"name": "test_speed", "stats": {"mean": mean}},
                ],
            }))
        assert main(["bench-report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Benchmark trajectory — 2 snapshots" in out
        assert "test_speed" in out
        assert "2.00/s" in out and "4.00/s" in out  # 1/mean per column

    def test_bench_report_empty_dir_is_a_clean_cli_error(
        self, tmp_path, capsys
    ):
        assert main(["bench-report", "--dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "BENCH_" in err

    def test_compare_with_wfq_tenants(self, capsys):
        assert main([
            "compare", "--jobs", "3", "--seed", "1", "--workers", "2",
            "--admission", "wfq",
            "--tenant-weights", "interactive=4", "batch=1",
        ]) == 0
        out = capsys.readouterr().out
        assert "admission wfq" in out
        assert "tenant batch" in out and "tenant interactive" in out
        assert "p95 queue delay" in out
