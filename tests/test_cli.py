"""Unit tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_parses_number_and_seed(self):
        args = build_parser().parse_args(["fig", "12", "--seed", "7"])
        assert args.number == 12 and args.seed == 7

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.jobs == 10 and args.alpha == 0.10
        assert args.placement == "spread" and args.rebalance == "none"

    def test_rebalance_choices(self):
        args = build_parser().parse_args(
            ["compare", "--workers", "2", "--rebalance", "progress"]
        )
        assert args.rebalance == "progress"
        args = build_parser().parse_args(
            ["sweep", "--workers", "2", "--rebalance", "migrate"]
        )
        assert args.rebalance == "migrate"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--rebalance", "gandiva"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig 12" in out and "table 2" in out

    def test_zoo(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "VAE (Pytorch)" in out

    def test_fig_unknown_number_errors(self, capsys):
        assert main(["fig", "99"]) == 2
        assert "no figure 99" in capsys.readouterr().err

    def test_table_unknown_number_errors(self, capsys):
        assert main(["table", "7"]) == 2

    def test_fig1(self, capsys):
        assert main(["fig", "1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_fig3(self, capsys):
        assert main(["fig", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "NA" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "reduction %" in out

    def test_compare_fixed_three(self, capsys):
        assert main([
            "compare", "--jobs", "3", "--alpha", "0.05",
            "--itval", "20", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "wins" in out and "makespan" in out

    def test_sweep(self, capsys):
        assert main([
            "sweep", "--alphas", "0.05", "--itvals", "20", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "itval=20" in out
