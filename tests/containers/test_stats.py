"""Unit tests for the stats sampler."""

from __future__ import annotations

import pytest

from repro.containers.container import Container
from repro.containers.spec import ResourceVector
from repro.containers.stats import StatsSampler
from tests.conftest import make_linear_job


class TestStatsSampler:
    def test_first_sample_spans_from_creation(self):
        c = Container(make_linear_job(), created_at=0.0)
        c.start(0.0)
        c.cgroup.accumulate(10.0, ResourceVector(cpu=0.4))
        c.cgroup.checkpoint()
        sampler = StatsSampler()
        stats = sampler.sample(c, 10.0)
        assert stats.mean_usage.cpu == pytest.approx(0.4)

    def test_second_sample_covers_only_new_window(self):
        c = Container(make_linear_job(), created_at=0.0)
        c.start(0.0)
        sampler = StatsSampler()
        c.cgroup.accumulate(10.0, ResourceVector(cpu=0.4))
        c.cgroup.checkpoint()
        sampler.sample(c, 10.0)
        c.cgroup.accumulate(10.0, ResourceVector(cpu=0.8))
        c.cgroup.checkpoint()
        stats = sampler.sample(c, 20.0)
        assert stats.mean_usage.cpu == pytest.approx(0.8)

    def test_duplicate_time_returns_none(self):
        c = Container(make_linear_job(), created_at=0.0)
        c.start(0.0)
        sampler = StatsSampler()
        c.cgroup.accumulate(5.0, ResourceVector(cpu=1.0))
        sampler.sample(c, 5.0)
        assert sampler.sample(c, 5.0) is None

    def test_eval_value_present(self):
        job = make_linear_job(total_work=100.0)
        c = Container(job, created_at=0.0)
        c.start(0.0)
        job.advance(50.0)
        c.cgroup.accumulate(5.0, ResourceVector(cpu=1.0))
        sampler = StatsSampler()
        stats = sampler.sample(c, 5.0)
        assert stats.eval_value == pytest.approx(0.5)

    def test_metadata_fields(self):
        c = Container(make_linear_job(), name="Job-9", created_at=0.0)
        c.start(0.0)
        c.current_alloc = 0.3
        c.limits.set_cpu(0.4)
        c.cgroup.accumulate(5.0, ResourceVector(cpu=0.3))
        stats = StatsSampler().sample(c, 5.0)
        assert stats.name == "Job-9"
        assert stats.cpu_alloc == pytest.approx(0.3)
        assert stats.cpu_limit == pytest.approx(0.4)
        assert stats.state == "running"

    def test_forget_resets_window(self):
        c = Container(make_linear_job(), created_at=0.0)
        c.start(0.0)
        sampler = StatsSampler()
        c.cgroup.accumulate(10.0, ResourceVector(cpu=1.0))
        c.cgroup.checkpoint()
        sampler.sample(c, 10.0)
        sampler.forget(c.cid)
        # After forgetting, the window restarts from creation again.
        stats = sampler.sample(c, 10.0 + 1e-9)
        assert stats is not None
