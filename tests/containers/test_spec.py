"""Unit tests for resource specs and vectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.containers.spec import ResourceSpec, ResourceType, ResourceVector
from repro.errors import ConfigError


class TestResourceType:
    def test_ordered_is_stable_and_complete(self):
        assert ResourceType.ordered() == (
            ResourceType.CPU,
            ResourceType.MEMORY,
            ResourceType.BLKIO,
            ResourceType.NETIO,
        )

    def test_index_matches_order(self):
        for i, r in enumerate(ResourceType.ordered()):
            assert r.index == i


class TestResourceVector:
    def test_roundtrip_array(self):
        v = ResourceVector(cpu=0.5, memory=0.2, blkio=0.1, netio=0.05)
        assert ResourceVector.from_array(v.as_array()) == v

    def test_from_array_shape_check(self):
        with pytest.raises(ConfigError):
            ResourceVector.from_array(np.zeros(3))

    def test_get_and_replace(self):
        v = ResourceVector(cpu=0.5)
        assert v.get(ResourceType.CPU) == 0.5
        w = v.replace(ResourceType.MEMORY, 0.3)
        assert w.memory == 0.3 and w.cpu == 0.5
        assert v.memory == 0.0  # original untouched

    def test_add_and_scale(self):
        v = ResourceVector(cpu=0.2) + ResourceVector(cpu=0.3, memory=0.1)
        assert v.cpu == pytest.approx(0.5)
        assert v.scaled(2.0).cpu == pytest.approx(1.0)

    def test_dominates(self):
        big = ResourceVector(cpu=0.5, memory=0.5)
        small = ResourceVector(cpu=0.1, memory=0.5)
        assert big.dominates(small)
        assert not small.dominates(big)


class TestResourceSpec:
    def test_defaults_valid(self):
        spec = ResourceSpec()
        assert spec.cpu_demand == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            ResourceSpec(cpu_demand=1.5)
        with pytest.raises(ConfigError):
            ResourceSpec(memory=-0.1)

    def test_rejects_zero_demand(self):
        with pytest.raises(ConfigError):
            ResourceSpec(cpu_demand=0.0)

    def test_usage_at_caps_cpu_at_demand(self):
        spec = ResourceSpec(cpu_demand=0.35, memory=0.2, blkio=0.1)
        usage = spec.usage_at(0.9)
        assert usage.cpu == pytest.approx(0.35)
        assert usage.memory == pytest.approx(0.2)  # resident regardless
        assert usage.blkio == pytest.approx(0.1)   # at full demand-rate

    def test_usage_io_scales_with_achieved_rate(self):
        spec = ResourceSpec(cpu_demand=1.0, blkio=0.2)
        usage = spec.usage_at(0.5)
        assert usage.cpu == pytest.approx(0.5)
        assert usage.blkio == pytest.approx(0.1)

    def test_usage_at_zero(self):
        spec = ResourceSpec(cpu_demand=1.0, memory=0.3)
        usage = spec.usage_at(0.0)
        assert usage.cpu == 0.0
        assert usage.memory == pytest.approx(0.3)
