"""Unit tests for Container lifecycle."""

from __future__ import annotations

import pytest

from repro.containers.container import Container, ContainerState
from repro.errors import ContainerStateError
from tests.conftest import make_linear_job


class TestLifecycle:
    def test_created_then_running_then_exited(self):
        c = Container(make_linear_job(), created_at=10.0)
        assert c.state is ContainerState.CREATED
        c.start(10.0)
        assert c.running
        c.mark_exited(50.0)
        assert c.exited
        assert c.completion_time() == pytest.approx(40.0)

    def test_double_start_raises(self):
        c = Container(make_linear_job())
        c.start(0.0)
        with pytest.raises(ContainerStateError):
            c.start(1.0)

    def test_exit_before_start_raises(self):
        c = Container(make_linear_job())
        with pytest.raises(ContainerStateError):
            c.mark_exited(1.0)

    def test_completion_time_before_exit_raises(self):
        c = Container(make_linear_job())
        c.start(0.0)
        with pytest.raises(ContainerStateError):
            c.completion_time()

    def test_exit_zeroes_allocation(self):
        c = Container(make_linear_job())
        c.start(0.0)
        c.current_alloc = 0.7
        c.mark_exited(5.0)
        assert c.current_alloc == 0.0


class TestIdentity:
    def test_cids_unique_and_increasing(self):
        a = Container(make_linear_job())
        b = Container(make_linear_job())
        assert b.cid > a.cid

    def test_default_name_from_cid(self):
        c = Container(make_linear_job())
        assert c.name == f"con-{c.cid}"

    def test_custom_name_and_image(self):
        c = Container(make_linear_job(), name="Job-1", image="pytorch/vae")
        assert c.name == "Job-1" and c.image == "pytorch/vae"


class TestDerived:
    def test_demand_comes_from_job_footprint(self):
        c = Container(make_linear_job(demand=0.35))
        assert c.demand() == pytest.approx(0.35)

    def test_usage_at_delegates_to_footprint(self):
        c = Container(make_linear_job(demand=0.5))
        assert c.usage_at(0.9).cpu == pytest.approx(0.5)

    def test_fresh_limits_are_open(self):
        c = Container(make_linear_job())
        assert c.limits.cpu == 1.0
