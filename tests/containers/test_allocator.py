"""Unit + property tests for the CPU allocator — the substrate's core.

The worked examples from the paper are encoded directly:
* §5.3: VAE limited to 0.25 + fresh MNIST at 1 ⇒ 25 % / 75 %;
* §4.1: soft limits let others use capacity a container leaves unused.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.containers.allocator import AllocationMode, CpuAllocator, water_fill
from repro.errors import AllocationError


class TestWaterFill:
    def test_equal_split_unsaturated(self):
        alloc = water_fill(1.0, np.array([1.0, 1.0, 1.0]))
        assert np.allclose(alloc, [1 / 3, 1 / 3, 1 / 3])

    def test_saturation_redistributes(self):
        alloc = water_fill(1.0, np.array([0.1, 1.0]))
        assert np.allclose(alloc, [0.1, 0.9])

    def test_paper_example_25_75(self):
        # VAE capped at 0.25, MNIST free: 25 % / 75 % (§5.3).
        alloc = water_fill(1.0, np.array([0.25, 1.0]))
        assert np.allclose(alloc, [0.25, 0.75])

    def test_capacity_exceeds_ceilings(self):
        alloc = water_fill(1.0, np.array([0.2, 0.3]))
        assert np.allclose(alloc, [0.2, 0.3])

    def test_zero_capacity(self):
        alloc = water_fill(0.0, np.array([0.5, 0.5]))
        assert np.allclose(alloc, 0.0)

    def test_empty_input(self):
        assert water_fill(1.0, np.zeros(0)).shape == (0,)

    def test_weighted_shares(self):
        alloc = water_fill(1.0, np.array([1.0, 1.0]), np.array([1.0, 3.0]))
        assert np.allclose(alloc, [0.25, 0.75])

    def test_weighted_with_cap(self):
        # Heavy-weight entity capped: remainder flows to the other.
        alloc = water_fill(1.0, np.array([1.0, 0.2]), np.array([1.0, 9.0]))
        assert np.allclose(alloc, [0.8, 0.2])

    def test_limits_as_exact_shares(self):
        # When ceilings sum to capacity, allocations equal ceilings.
        caps = np.array([0.6, 0.3, 0.1])
        assert np.allclose(water_fill(1.0, caps), caps)

    def test_negative_capacity_raises(self):
        with pytest.raises(AllocationError):
            water_fill(-1.0, np.array([1.0]))

    def test_negative_ceiling_raises(self):
        with pytest.raises(AllocationError):
            water_fill(1.0, np.array([-0.5]))

    def test_nonpositive_weights_raise(self):
        with pytest.raises(AllocationError):
            water_fill(1.0, np.array([1.0]), np.array([0.0]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(AllocationError):
            water_fill(1.0, np.array([1.0]), np.array([1.0, 2.0]))

    @given(
        st.lists(st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=20),
        st.floats(min_value=0.0, max_value=4.0),
    )
    def test_property_conservation_and_bounds(self, caps, capacity):
        caps = np.array(caps)
        alloc = water_fill(capacity, caps)
        assert np.all(alloc >= -1e-9)
        assert np.all(alloc <= caps + 1e-9)
        expected = min(capacity, caps.sum())
        assert alloc.sum() == pytest.approx(expected, abs=1e-6)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=2.0),   # ceiling
                st.floats(min_value=0.01, max_value=10.0),  # weight
            ),
            min_size=2,
            max_size=15,
        )
    )
    def test_property_weighted_fairness(self, pairs):
        """Unsaturated entities receive shares proportional to weight."""
        caps = np.array([p[0] for p in pairs])
        weights = np.array([p[1] for p in pairs])
        alloc = water_fill(1.0, caps, weights)
        unsat = alloc < caps - 1e-9
        if unsat.sum() >= 2:
            ratios = alloc[unsat] / weights[unsat]
            assert np.allclose(ratios, ratios[0], atol=1e-6)


class TestCpuAllocator:
    def test_soft_mode_is_work_conserving(self):
        alloc = CpuAllocator(AllocationMode.SOFT).allocate(
            1.0, np.array([0.1, 0.1]), np.array([1.0, 1.0])
        )
        # Limits sum to 0.2 but demand is full: soft mode fills the node.
        assert alloc.sum() == pytest.approx(1.0)

    def test_hard_mode_wastes_capacity(self):
        alloc = CpuAllocator(AllocationMode.HARD).allocate(
            1.0, np.array([0.1, 0.1]), np.array([1.0, 1.0])
        )
        assert alloc.sum() == pytest.approx(0.2)

    def test_demand_always_respected(self):
        alloc = CpuAllocator(AllocationMode.SOFT).allocate(
            1.0, np.array([1.0, 1.0]), np.array([0.35, 1.0])
        )
        assert alloc[0] == pytest.approx(0.35)
        assert alloc[1] == pytest.approx(0.65)

    def test_single_limited_container_recovers_node_in_soft_mode(self):
        # A lone container limited to 0.25 still gets the whole node:
        # nothing else wants the capacity (§4.1 soft-limit semantics).
        alloc = CpuAllocator(AllocationMode.SOFT).allocate(
            1.0, np.array([0.25]), np.array([1.0])
        )
        assert alloc[0] == pytest.approx(1.0)

    def test_single_limited_container_capped_in_hard_mode(self):
        alloc = CpuAllocator(AllocationMode.HARD).allocate(
            1.0, np.array([0.25]), np.array([1.0])
        )
        assert alloc[0] == pytest.approx(0.25)

    def test_paper_flowcon_shares(self):
        # CL-floored VAE (0.25) + two NL jobs at limit 1.
        alloc = CpuAllocator().allocate(
            1.0, np.array([0.25, 1.0, 1.0]), np.array([1.0, 1.0, 1.0])
        )
        assert alloc[0] == pytest.approx(0.25)
        assert alloc[1] == pytest.approx(0.375)
        assert alloc[2] == pytest.approx(0.375)

    def test_empty(self):
        assert CpuAllocator().allocate(1.0, np.zeros(0), np.zeros(0)).shape == (0,)

    def test_invalid_limits_raise(self):
        with pytest.raises(AllocationError):
            CpuAllocator().allocate(1.0, np.array([0.0]), np.array([1.0]))
        with pytest.raises(AllocationError):
            CpuAllocator().allocate(1.0, np.array([1.5]), np.array([1.0]))

    def test_negative_demand_raises(self):
        with pytest.raises(AllocationError):
            CpuAllocator().allocate(1.0, np.array([1.0]), np.array([-0.1]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(AllocationError):
            CpuAllocator().allocate(1.0, np.array([1.0]), np.array([1.0, 1.0]))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=1.0),  # limit
                st.floats(min_value=0.0, max_value=1.0),   # demand
            ),
            min_size=1,
            max_size=12,
        ),
        st.sampled_from([AllocationMode.SOFT, AllocationMode.HARD]),
    )
    def test_property_soft_conserves_hard_caps(self, pairs, mode):
        limits = np.array([p[0] for p in pairs])
        demands = np.array([p[1] for p in pairs])
        alloc = CpuAllocator(mode).allocate(1.0, limits, demands)
        assert np.all(alloc <= demands + 1e-9)
        assert alloc.sum() <= 1.0 + 1e-9
        if mode is AllocationMode.HARD:
            assert np.all(alloc <= limits + 1e-9)
        else:
            expected = min(1.0, demands.sum())
            assert alloc.sum() == pytest.approx(expected, abs=1e-6)


class TestScalarPathBitParity:
    """The small-pool scalar fast path must be *bit-identical* to numpy.

    Replay exactness of the whole simulator rests on this: the scalar
    path is reached on every reallocation of every worker with at most
    ``_SCALAR_MAX`` containers, i.e. essentially always.
    """

    def test_water_fill_scalar_matches_vectorized_fuzz(self):
        from repro.containers.allocator import _water_fill_scalar, water_fill

        rng = np.random.default_rng(7)
        for trial in range(3000):
            n = int(rng.integers(1, 12))
            ceilings = rng.uniform(0, 1.2, n)
            style = trial % 6
            if style == 1:
                ceilings[rng.integers(n)] = 0.0
            if style == 2:
                ceilings = np.round(ceilings, 2)  # force level ties
            if style == 3:
                ceilings[:] = 0.5  # all-equal levels
            if style == 4:
                ceilings[rng.integers(n)] = np.inf
            weights = None if trial % 3 == 0 else rng.uniform(0.01, 2.0, n)
            capacity = [0.0, 1.0, 0.25, 3.0, float(rng.uniform(0, 2))][
                trial % 5
            ]
            ref = water_fill(capacity, ceilings, weights)
            got = _water_fill_scalar(
                capacity,
                list(ceilings),
                list(weights) if weights is not None else None,
            )
            assert ref.tolist() == got  # exact, not approx

    def test_allocate_scalar_matches_vectorized_fuzz(self, monkeypatch):
        import repro.containers.allocator as alloc_mod

        rng = np.random.default_rng(13)
        for mode in (AllocationMode.SOFT, AllocationMode.HARD):
            scalar = CpuAllocator(mode)
            vector = CpuAllocator(mode)
            for trial in range(1500):
                n = int(rng.integers(1, 12))
                limits = rng.uniform(0.01, 1.0, n)
                if trial % 4 == 0:
                    limits[:] = 1.0
                demands = np.minimum(
                    np.maximum(rng.uniform(0, 1.2, n), 1e-3), 1.0
                )
                weights = (
                    None if trial % 3 == 0 else rng.uniform(0.5, 1.5, n)
                )
                capacity = [1.0, 0.25, 4.0][trial % 3]
                got = scalar.allocate(capacity, limits, demands, weights)
                with monkeypatch.context() as m:
                    m.setattr(alloc_mod, "_SCALAR_MAX", 0)
                    ref = vector.allocate(capacity, limits, demands, weights)
                assert ref.tolist() == got.tolist()  # exact, not approx

    def test_scalar_path_validations_match(self):
        with pytest.raises(AllocationError):
            CpuAllocator().allocate(1.0, np.array([0.0]), np.array([0.5]))
        with pytest.raises(AllocationError):
            CpuAllocator().allocate(1.0, np.array([1.5]), np.array([0.5]))
        with pytest.raises(AllocationError):
            CpuAllocator().allocate(1.0, np.array([1.0]), np.array([-0.5]))
