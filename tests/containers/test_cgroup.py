"""Unit tests for cgroup accounting."""

from __future__ import annotations

import pytest

from repro.containers.cgroup import CgroupAccount
from repro.containers.spec import ResourceVector
from repro.errors import ContainerError


class TestAccumulation:
    def test_cpu_seconds_integrate(self):
        acct = CgroupAccount()
        acct.accumulate(10.0, ResourceVector(cpu=0.5))
        acct.accumulate(10.0, ResourceVector(cpu=1.0))
        assert acct.cpu_seconds() == pytest.approx(15.0)

    def test_zero_interval_is_noop(self):
        acct = CgroupAccount()
        acct.accumulate(0.0, ResourceVector(cpu=1.0))
        assert acct.cpu_seconds() == 0.0

    def test_negative_interval_raises(self):
        with pytest.raises(ContainerError):
            CgroupAccount().accumulate(-1.0, ResourceVector())

    def test_totals_cover_all_dimensions(self):
        acct = CgroupAccount()
        acct.accumulate(4.0, ResourceVector(cpu=0.5, memory=0.25, blkio=0.1))
        totals = acct.totals
        assert totals.cpu == pytest.approx(2.0)
        assert totals.memory == pytest.approx(1.0)
        assert totals.blkio == pytest.approx(0.4)


class TestWindows:
    def test_mean_usage_over_checkpointed_window(self):
        acct = CgroupAccount()
        acct.accumulate(10.0, ResourceVector(cpu=0.2))
        acct.checkpoint()
        acct.accumulate(10.0, ResourceVector(cpu=0.8))
        acct.checkpoint()
        mean = acct.mean_usage_since(10.0, 20.0)
        assert mean.cpu == pytest.approx(0.8)

    def test_mean_usage_across_phases(self):
        acct = CgroupAccount()
        acct.accumulate(10.0, ResourceVector(cpu=0.2))
        acct.checkpoint()
        acct.accumulate(10.0, ResourceVector(cpu=0.8))
        acct.checkpoint()
        mean = acct.mean_usage_since(0.0, 20.0)
        assert mean.cpu == pytest.approx(0.5)

    def test_interpolation_inside_phase(self):
        acct = CgroupAccount()
        acct.accumulate(10.0, ResourceVector(cpu=1.0))
        acct.checkpoint()
        mean = acct.mean_usage_since(2.5, 7.5)
        assert mean.cpu == pytest.approx(1.0)

    def test_window_before_creation_clamps(self):
        acct = CgroupAccount(created_at=5.0)
        acct.accumulate(5.0, ResourceVector(cpu=1.0))
        acct.checkpoint()
        # Window starting before creation sees zero usage there.
        mean = acct.mean_usage_since(0.0, 10.0)
        assert mean.cpu == pytest.approx(0.5)

    def test_empty_window_raises(self):
        with pytest.raises(ContainerError):
            CgroupAccount().mean_usage_since(5.0, 5.0)

    def test_window_between_returns_duration(self):
        acct = CgroupAccount()
        acct.accumulate(8.0, ResourceVector(cpu=0.5))
        acct.checkpoint()
        window = acct.window_between(0.0, 8.0)
        assert window.duration == pytest.approx(8.0)
        assert window.mean.cpu == pytest.approx(0.5)


class TestIntegralAliasing:
    """Regression: ``_integral_at`` must never leak live internals.

    The historical implementation returned ``_cp_values[0]`` / the live
    ``_integral`` array by reference, so a caller mutating the result
    corrupted the account's bookkeeping.
    """

    def _account(self) -> CgroupAccount:
        acct = CgroupAccount()
        acct.accumulate(10.0, ResourceVector(cpu=0.5))
        acct.checkpoint()
        acct.accumulate(10.0, ResourceVector(cpu=1.0))
        acct.checkpoint()
        return acct

    def test_mutating_before_creation_result_is_harmless(self):
        acct = self._account()
        acct._integral_at(-5.0)[:] = 99.0  # first-checkpoint branch
        assert acct.cpu_seconds() == pytest.approx(15.0)
        assert acct.mean_usage_since(0.0, 10.0).cpu == pytest.approx(0.5)

    def test_mutating_live_counter_result_is_harmless(self):
        acct = self._account()
        acct._integral_at(20.0)[:] = 99.0  # t >= last_update branch
        assert acct.cpu_seconds() == pytest.approx(15.0)
        assert acct.totals.cpu == pytest.approx(15.0)

    def test_mutating_interpolated_result_is_harmless(self):
        acct = self._account()
        acct._integral_at(5.0)[:] = 99.0  # interpolation branch
        assert acct.mean_usage_since(0.0, 10.0).cpu == pytest.approx(0.5)

    def test_checkpoint_count_and_prune(self):
        acct = self._account()
        assert acct.checkpoint_count == 3  # creation + 2 checkpoints
        assert acct.prune_before(10.0) == 1
        assert acct.checkpoint_count == 2
        assert acct.history_floor == pytest.approx(10.0)
        # Windows at or above the floor are untouched.
        assert acct.mean_usage_since(10.0, 20.0).cpu == pytest.approx(1.0)
        with pytest.raises(ContainerError):
            acct.mean_usage_since(5.0, 20.0)

    def test_grow_preserves_history(self):
        acct = CgroupAccount()
        for _ in range(100):  # force several buffer growths
            acct.accumulate(1.0, ResourceVector(cpu=0.25))
            acct.checkpoint()
        assert acct.checkpoint_count == 101
        assert acct.cpu_seconds() == pytest.approx(25.0)
        assert acct.mean_usage_since(10.0, 90.0).cpu == pytest.approx(0.25)

    def test_prune_then_grow_compacts(self):
        acct = CgroupAccount()
        for i in range(200):
            acct.accumulate(1.0, ResourceVector(cpu=0.5))
            acct.checkpoint()
            if i % 10 == 0:
                acct.prune_before(acct.last_update - 5.0)
        assert acct.checkpoint_count < 32
        assert acct.cpu_seconds() == pytest.approx(100.0)
