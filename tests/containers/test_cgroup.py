"""Unit tests for cgroup accounting."""

from __future__ import annotations

import pytest

from repro.containers.cgroup import CgroupAccount
from repro.containers.spec import ResourceVector
from repro.errors import ContainerError


class TestAccumulation:
    def test_cpu_seconds_integrate(self):
        acct = CgroupAccount()
        acct.accumulate(10.0, ResourceVector(cpu=0.5))
        acct.accumulate(10.0, ResourceVector(cpu=1.0))
        assert acct.cpu_seconds() == pytest.approx(15.0)

    def test_zero_interval_is_noop(self):
        acct = CgroupAccount()
        acct.accumulate(0.0, ResourceVector(cpu=1.0))
        assert acct.cpu_seconds() == 0.0

    def test_negative_interval_raises(self):
        with pytest.raises(ContainerError):
            CgroupAccount().accumulate(-1.0, ResourceVector())

    def test_totals_cover_all_dimensions(self):
        acct = CgroupAccount()
        acct.accumulate(4.0, ResourceVector(cpu=0.5, memory=0.25, blkio=0.1))
        totals = acct.totals
        assert totals.cpu == pytest.approx(2.0)
        assert totals.memory == pytest.approx(1.0)
        assert totals.blkio == pytest.approx(0.4)


class TestWindows:
    def test_mean_usage_over_checkpointed_window(self):
        acct = CgroupAccount()
        acct.accumulate(10.0, ResourceVector(cpu=0.2))
        acct.checkpoint()
        acct.accumulate(10.0, ResourceVector(cpu=0.8))
        acct.checkpoint()
        mean = acct.mean_usage_since(10.0, 20.0)
        assert mean.cpu == pytest.approx(0.8)

    def test_mean_usage_across_phases(self):
        acct = CgroupAccount()
        acct.accumulate(10.0, ResourceVector(cpu=0.2))
        acct.checkpoint()
        acct.accumulate(10.0, ResourceVector(cpu=0.8))
        acct.checkpoint()
        mean = acct.mean_usage_since(0.0, 20.0)
        assert mean.cpu == pytest.approx(0.5)

    def test_interpolation_inside_phase(self):
        acct = CgroupAccount()
        acct.accumulate(10.0, ResourceVector(cpu=1.0))
        acct.checkpoint()
        mean = acct.mean_usage_since(2.5, 7.5)
        assert mean.cpu == pytest.approx(1.0)

    def test_window_before_creation_clamps(self):
        acct = CgroupAccount(created_at=5.0)
        acct.accumulate(5.0, ResourceVector(cpu=1.0))
        acct.checkpoint()
        # Window starting before creation sees zero usage there.
        mean = acct.mean_usage_since(0.0, 10.0)
        assert mean.cpu == pytest.approx(0.5)

    def test_empty_window_raises(self):
        with pytest.raises(ContainerError):
            CgroupAccount().mean_usage_since(5.0, 5.0)

    def test_window_between_returns_duration(self):
        acct = CgroupAccount()
        acct.accumulate(8.0, ResourceVector(cpu=0.5))
        acct.checkpoint()
        window = acct.window_between(0.0, 8.0)
        assert window.duration == pytest.approx(8.0)
        assert window.mean.cpu == pytest.approx(0.5)
