"""Unit tests for LimitSet."""

from __future__ import annotations

import math

import pytest

from repro.containers.limits import MIN_LIMIT, LimitSet
from repro.containers.spec import ResourceType
from repro.errors import ConfigError


class TestLimitSet:
    def test_defaults_to_free_competition(self):
        limits = LimitSet()
        for r in ResourceType.ordered():
            assert limits.get(r) == 1.0

    def test_set_and_get(self):
        limits = LimitSet()
        assert limits.set_cpu(0.25, time=5.0)
        assert limits.cpu == 0.25

    def test_unchanged_value_returns_false(self):
        limits = LimitSet()
        limits.set_cpu(0.5)
        assert not limits.set_cpu(0.5)

    def test_journal_records_updates(self):
        limits = LimitSet()
        limits.set_cpu(0.5, time=1.0)
        limits.set_cpu(0.25, time=2.0)
        journal = limits.journal
        assert [(u.time, u.old, u.new) for u in journal] == [
            (1.0, 1.0, 0.5),
            (2.0, 0.5, 0.25),
        ]

    def test_clamps_above_one(self):
        limits = LimitSet()
        limits.set_cpu(5.0)
        assert limits.cpu == 1.0

    def test_clamps_to_min_quantum(self):
        limits = LimitSet()
        limits.set_cpu(1e-9)
        assert limits.cpu == MIN_LIMIT

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            LimitSet().set_cpu(0.0)
        with pytest.raises(ConfigError):
            LimitSet().set_cpu(-0.5)

    def test_rejects_nan(self):
        with pytest.raises(ConfigError):
            LimitSet().set_cpu(math.nan)

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigError):
            LimitSet().set_cpu("half")  # type: ignore[arg-type]

    def test_reset_restores_defaults(self):
        limits = LimitSet()
        limits.set_cpu(0.2)
        limits.set(ResourceType.MEMORY, 0.3)
        limits.reset(time=9.0)
        assert limits.cpu == 1.0
        assert limits.get(ResourceType.MEMORY) == 1.0

    def test_as_dict(self):
        d = LimitSet().as_dict()
        assert d == {"cpu": 1.0, "memory": 1.0, "blkio": 1.0, "netio": 1.0}
