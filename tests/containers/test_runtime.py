"""Unit tests for the ContainerRuntime daemon facade."""

from __future__ import annotations

import pytest

from repro.containers.runtime import ContainerRuntime
from repro.errors import ContainerStateError, UnknownContainerError
from tests.conftest import make_linear_job


@pytest.fixture
def clockbox():
    box = {"t": 0.0}
    return box


@pytest.fixture
def runtime(clockbox):
    return ContainerRuntime(clock=lambda: clockbox["t"])


class TestRun:
    def test_run_starts_container(self, runtime, clockbox):
        clockbox["t"] = 3.0
        c = runtime.run(make_linear_job(), name="j1", image="img")
        assert c.running and c.created_at == 3.0 and c.started_at == 3.0

    def test_ps_lists_running_only(self, runtime, clockbox):
        a = runtime.run(make_linear_job())
        b = runtime.run(make_linear_job())
        clockbox["t"] = 5.0
        runtime.mark_exited(a.cid)
        assert [c.cid for c in runtime.ps()] == [b.cid]
        assert len(runtime.ps(all_states=True)) == 2


class TestUpdate:
    def test_update_changes_limit(self, runtime, clockbox):
        c = runtime.run(make_linear_job())
        clockbox["t"] = 7.0
        assert runtime.update(c.cid, cpus=0.25)
        assert c.limits.cpu == 0.25
        assert c.limits.journal[0].time == 7.0

    def test_update_noop_returns_false(self, runtime):
        c = runtime.run(make_linear_job())
        assert not runtime.update(c.cid, cpus=1.0)

    def test_update_exited_raises(self, runtime):
        c = runtime.run(make_linear_job())
        runtime.mark_exited(c.cid)
        with pytest.raises(ContainerStateError):
            runtime.update(c.cid, cpus=0.5)

    def test_update_unknown_cid_raises(self, runtime):
        with pytest.raises(UnknownContainerError):
            runtime.update(99999, cpus=0.5)

    def test_update_multiple_resources(self, runtime):
        c = runtime.run(make_linear_job())
        assert runtime.update(c.cid, cpus=0.5, memory=0.4, blkio_weight=0.6)
        assert c.limits.as_dict()["memory"] == 0.4


class TestStatsAndRemove:
    def test_stats_zero_window_returns_none(self, runtime):
        c = runtime.run(make_linear_job())
        assert runtime.stats(c.cid) is None  # same-instant sample

    def test_stats_after_accounting(self, runtime, clockbox):
        from repro.containers.spec import ResourceVector

        c = runtime.run(make_linear_job())
        c.cgroup.accumulate(10.0, ResourceVector(cpu=0.5))
        c.cgroup.checkpoint()
        clockbox["t"] = 10.0
        stats = runtime.stats(c.cid)
        assert stats is not None
        assert stats.mean_usage.cpu == pytest.approx(0.5)
        assert stats.eval_value is not None

    def test_remove_requires_exited(self, runtime):
        c = runtime.run(make_linear_job())
        with pytest.raises(ContainerStateError):
            runtime.remove(c.cid)
        runtime.mark_exited(c.cid)
        runtime.remove(c.cid)
        with pytest.raises(UnknownContainerError):
            runtime.get(c.cid)


class TestEvents:
    def test_lifecycle_notifications(self, runtime):
        events = []
        runtime.subscribe(lambda ev, c: events.append(ev))
        c = runtime.run(make_linear_job())
        runtime.update(c.cid, cpus=0.5)
        runtime.mark_exited(c.cid)
        runtime.remove(c.cid)
        assert events == ["run", "update", "exit", "remove"]

    def test_noop_update_not_notified(self, runtime):
        events = []
        runtime.subscribe(lambda ev, c: events.append(ev))
        c = runtime.run(make_linear_job())
        runtime.update(c.cid, cpus=1.0)
        assert events == ["run"]
