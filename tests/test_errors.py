"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_config_error_is_value_error(self):
        assert issubclass(errors.ConfigError, ValueError)

    def test_unknown_container_is_key_error(self):
        assert issubclass(errors.UnknownContainerError, KeyError)

    def test_layer_grouping(self):
        assert issubclass(errors.EventQueueError, errors.SimulationError)
        assert issubclass(errors.ClockError, errors.SimulationError)
        assert issubclass(errors.AllocationError, errors.ContainerError)
        assert issubclass(errors.CurveError, errors.WorkloadError)
        assert issubclass(errors.CapacityError, errors.ClusterError)
        assert issubclass(errors.ListMembershipError, errors.SchedulerError)

    def test_single_except_clause_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.CurveError("bad tau")
