"""Unit tests for Algorithm 1 (pure decision logic)."""

from __future__ import annotations

import pytest

from repro.config import FlowConConfig
from repro.core.algorithm1 import run_algorithm1
from repro.core.lists import ContainerLists, ListName
from repro.core.monitor import Measurement


def m(cid, growth=1.0, rel=1.0, n=5, name=None):
    return Measurement(
        cid=cid,
        name=name or f"c{cid}",
        growth=growth,
        relative_growth=rel,
        n_samples=n,
        eval_value=1.0,
    )


CFG = FlowConConfig(alpha=0.05, itval=20.0, beta=2.0)


class TestClassification:
    def test_growing_container_lands_in_nl(self):
        lists = ContainerLists()
        run_algorithm1([m(1, rel=0.5)], lists, CFG)
        assert lists.where(1) is ListName.NL

    def test_two_strike_demotion(self):
        lists = ContainerLists()
        run_algorithm1([m(1, rel=0.01)], lists, CFG)  # NL → WL
        assert lists.where(1) is ListName.WL
        run_algorithm1([m(1, rel=0.01)], lists, CFG)  # WL → CL
        assert lists.where(1) is ListName.CL

    def test_recovery_returns_to_nl(self):
        lists = ContainerLists()
        run_algorithm1([m(1, rel=0.01)], lists, CFG)
        run_algorithm1([m(1, rel=0.50)], lists, CFG)
        assert lists.where(1) is ListName.NL

    def test_cl_is_sticky_while_below_alpha(self):
        lists = ContainerLists()
        for _ in range(4):
            run_algorithm1([m(1, rel=0.001)], lists, CFG)
        assert lists.where(1) is ListName.CL

    def test_fresh_container_stays_nl_regardless(self):
        lists = ContainerLists()
        run_algorithm1([m(1, rel=0.0, n=0)], lists, CFG)
        assert lists.where(1) is ListName.NL

    def test_empty_measurements_noop(self):
        lists = ContainerLists()
        result = run_algorithm1([], lists, CFG)
        assert result.limit_updates == {}


class TestAllCompleting:
    def test_free_competition_and_backoff(self):
        lists = ContainerLists()
        # Drive both containers to CL.
        for _ in range(2):
            run_algorithm1([m(1, rel=0.01), m(2, rel=0.01)], lists, CFG)
        result = run_algorithm1([m(1, rel=0.01), m(2, rel=0.01)], lists, CFG)
        assert result.all_completing
        assert result.double_interval
        assert result.limit_updates == {1: 1.0, 2: 1.0}

    def test_backoff_suppressed_when_disabled(self):
        cfg = CFG.with_params(backoff_enabled=False)
        lists = ContainerLists()
        for _ in range(2):
            run_algorithm1([m(1, rel=0.01)], lists, cfg)
        result = run_algorithm1([m(1, rel=0.01)], lists, cfg)
        assert result.all_completing
        assert not result.double_interval


class TestShares:
    def test_fresh_container_gets_full_limit(self):
        lists = ContainerLists()
        result = run_algorithm1([m(1, n=0), m(2, rel=0.5)], lists, CFG)
        assert result.limit_updates[1] == 1.0

    def test_nl_full_limit_default(self):
        lists = ContainerLists()
        result = run_algorithm1(
            [m(1, rel=0.9), m(2, rel=0.6)], lists, CFG
        )
        assert result.limit_updates[1] == 1.0
        assert result.limit_updates[2] == 1.0

    def test_nl_literal_share_mode(self):
        cfg = CFG.with_params(nl_full_limit=False)
        lists = ContainerLists()
        result = run_algorithm1([m(1, rel=0.75), m(2, rel=0.25)], lists, cfg)
        assert result.limit_updates[1] == pytest.approx(0.75)
        assert result.limit_updates[2] == pytest.approx(0.25)

    def test_cl_share_floored(self):
        lists = ContainerLists()
        # Container 1 → CL (two strikes), container 2 young.
        run_algorithm1([m(1, rel=0.01), m(2, rel=0.9)], lists, CFG)
        run_algorithm1([m(1, rel=0.01), m(2, rel=0.9)], lists, CFG)
        result = run_algorithm1([m(1, rel=0.001), m(2, rel=0.9)], lists, CFG)
        assert lists.where(1) is ListName.CL
        # Floor = 1/(β·n) = 1/(2·2) = 0.25 — the paper's Fig. 7 value.
        assert result.limit_updates[1] == pytest.approx(0.25)

    def test_cl_share_unfloored_when_beta_none(self):
        cfg = CFG.with_params(beta=None)
        lists = ContainerLists()
        run_algorithm1([m(1, rel=0.01), m(2, rel=0.9)], lists, cfg)
        run_algorithm1([m(1, rel=0.01), m(2, rel=0.9)], lists, cfg)
        result = run_algorithm1([m(1, rel=0.001), m(2, rel=0.9)], lists, cfg)
        assert result.limit_updates[1] == pytest.approx(0.001 / 0.901)

    def test_wl_limit_unchanged(self):
        lists = ContainerLists()
        result = run_algorithm1([m(1, rel=0.01), m(2, rel=0.9)], lists, CFG)
        assert lists.where(1) is ListName.WL
        assert 1 not in result.limit_updates  # line 24

    def test_zero_total_growth_falls_back_to_free_competition(self):
        cfg = CFG.with_params(nl_full_limit=False)
        lists = ContainerLists()
        # Jobs with zero peak (warm-up) report relative growth 1.0, so
        # engineer the zero-total case via rel=0 with NL membership.
        lists.place(1, ListName.NL)
        result = run_algorithm1([m(1, rel=0.0)], lists, cfg)
        # rel 0 < alpha moves it to WL (no update) — so use a recovered one:
        lists2 = ContainerLists()
        lists2.place(2, ListName.CL)
        result = run_algorithm1([m(2, rel=0.0, growth=0.0)], lists2, cfg)
        # single container all-CL → free competition path
        assert result.limit_updates[2] == 1.0

    def test_limits_always_within_unit_interval(self):
        lists = ContainerLists()
        for _ in range(3):
            result = run_algorithm1(
                [m(i, rel=r) for i, r in ((1, 0.001), (2, 0.9), (3, 0.004))],
                lists,
                CFG,
            )
        for value in result.limit_updates.values():
            assert 0.0 < value <= 1.0

    def test_classifications_reported(self):
        lists = ContainerLists()
        result = run_algorithm1([m(1, rel=0.9), m(2, rel=0.01)], lists, CFG)
        assert result.classifications[1] is ListName.NL
        assert result.classifications[2] is ListName.WL
