"""Unit tests for the Executor: ticks, back-off, listener interrupts."""

from __future__ import annotations

import pytest

from repro.config import FlowConConfig
from repro.core.executor import Executor
from tests.conftest import make_linear_job


def _executor(worker, **kwargs) -> Executor:
    cfg = FlowConConfig(**{"alpha": 0.05, "itval": 20.0, **kwargs})
    ex = Executor(worker, cfg)
    ex.start()
    return ex


class TestPeriodicTicks:
    def test_algorithm_runs_every_interval(self, sim, ideal_worker):
        ex = _executor(ideal_worker)
        ideal_worker.launch(make_linear_job(total_work=1000.0))
        runs_before = ex.runs
        sim.run(until=65.0)
        # Launch interrupt + ticks at 20/40/60 (listener launch reset at 0).
        assert ex.runs - runs_before >= 3

    def test_stop_cancels_ticks(self, sim, ideal_worker):
        ex = _executor(ideal_worker)
        ideal_worker.launch(make_linear_job(total_work=1000.0))
        sim.run(until=25.0)
        runs = ex.runs
        ex.stop()
        sim.run(until=100.0)
        assert ex.runs == runs

    def test_start_is_idempotent(self, sim, ideal_worker):
        ex = _executor(ideal_worker)
        ex.start()
        ideal_worker.launch(make_linear_job(total_work=50.0))
        sim.run(until=25.0)  # must not double-tick
        assert ex.runs >= 1


class TestListenerInterrupts:
    def test_launch_triggers_immediate_run(self, sim, ideal_worker):
        ex = _executor(ideal_worker)
        assert ex.runs == 0
        ideal_worker.launch(make_linear_job(total_work=1000.0))
        assert ex.runs == 1  # event-driven listener fired synchronously
        assert ex.interrupts == 1

    def test_exit_triggers_immediate_run(self, sim, ideal_worker):
        ex = _executor(ideal_worker)
        ideal_worker.launch(make_linear_job(total_work=10.0))
        runs_after_launch = ex.runs
        sim.run(until=10.0)
        assert ex.interrupts == 2
        assert ex.runs > runs_after_launch

    def test_interrupt_resets_backoff(self, sim, ideal_worker):
        ex = _executor(ideal_worker)
        ex.itval = 160.0  # simulate accumulated back-off
        ideal_worker.launch(make_linear_job(total_work=1000.0))
        assert ex.itval == 20.0

    def test_polling_mode(self, sim, ideal_worker):
        ex = _executor(
            ideal_worker,
            event_driven_listeners=False,
            listener_poll_interval=1.0,
        )
        ideal_worker.launch(make_linear_job(total_work=1000.0))
        assert ex.runs == 0  # not synchronous in polling mode
        sim.run(until=1.5)
        assert ex.runs == 1  # first poll noticed the arrival

    def test_listeners_disabled(self, sim, ideal_worker):
        ex = _executor(ideal_worker, listeners_enabled=False)
        ideal_worker.launch(make_linear_job(total_work=1000.0))
        assert ex.runs == 0
        sim.run(until=21.0)
        assert ex.runs == 1  # only the periodic tick


class TestBackoff:
    def _converge(self, sim, worker, ex):
        """Run a single near-flat job until Algorithm 1 sees all-CL."""
        job = make_linear_job(total_work=10_000.0)
        # Make E flat after tiny initial drop: exploit warmup? Simpler:
        # let the linear job run; relative growth stays 1.0 — so instead
        # drive CL by making the curve converge: use an exponential.
        from repro.workloads.curves import ExponentialCurve
        from repro.workloads.evalfn import EvalFunction, EvalKind

        job = make_linear_job(total_work=400.0)
        job.curve = ExponentialCurve(1.0, 0.0, tau=0.02)
        worker.launch(job)

    def test_interval_doubles_when_all_completing(self, sim, ideal_worker):
        ex = _executor(ideal_worker)
        self._converge(sim, ideal_worker, ex)
        sim.run(until=200.0)
        assert ex.backoffs >= 1
        assert ex.itval > 20.0

    def test_backoff_capped_at_max(self, sim, ideal_worker):
        ex = _executor(ideal_worker, max_itval=80.0)
        self._converge(sim, ideal_worker, ex)
        sim.run(until=390.0)
        assert ex.itval <= 80.0

    def test_no_backoff_when_disabled(self, sim, ideal_worker):
        ex = _executor(ideal_worker, backoff_enabled=False)
        self._converge(sim, ideal_worker, ex)
        sim.run(until=200.0)
        assert ex.backoffs == 0
        assert ex.itval == 20.0


class TestLimitApplication:
    def test_converged_job_gets_floored_limit(self, sim, ideal_worker):
        from repro.workloads.curves import ExponentialCurve

        ex = _executor(ideal_worker)
        fast = make_linear_job("fast", total_work=1000.0)
        fast.curve = ExponentialCurve(1.0, 0.0, tau=0.02)
        young = make_linear_job("young", total_work=1000.0)
        c_fast = ideal_worker.launch(fast)
        ideal_worker.launch(young)
        sim.run(until=400.0)
        # fast converges long before 400 s: limit should be at the floor
        # 1/(β·n) = 1/(2·2) = 0.25.
        assert c_fast.limits.cpu == pytest.approx(0.25)
