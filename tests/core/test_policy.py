"""Unit tests for policy attachment."""

from __future__ import annotations

from repro.config import FlowConConfig
from repro.core.policy import FlowConPolicy
from tests.conftest import make_linear_job


class TestFlowConPolicy:
    def test_attach_starts_executor(self, sim, ideal_worker):
        policy = FlowConPolicy()
        policy.attach(ideal_worker)
        assert policy.executor is not None
        ideal_worker.launch(make_linear_job(total_work=100.0))
        assert policy.executor.runs == 1  # listener interrupt

    def test_detach_stops_ticks(self, sim, ideal_worker):
        policy = FlowConPolicy()
        policy.attach(ideal_worker)
        ideal_worker.launch(make_linear_job(total_work=10_000.0))
        runs = policy.executor.runs
        policy.detach()
        sim.run(until=100.0)
        assert policy.executor.runs == runs

    def test_name_includes_parameters(self):
        policy = FlowConPolicy(FlowConConfig(alpha=0.10, itval=40.0))
        assert policy.name == "FlowCon-10%-40"

    def test_describe_mentions_all_knobs(self):
        text = FlowConPolicy().describe()
        for key in ("alpha", "itval", "beta", "backoff", "listeners"):
            assert key in text

    def test_default_config_is_papers_headline(self):
        policy = FlowConPolicy()
        assert policy.config.alpha == 0.05
        assert policy.config.itval == 20.0
