"""Unit tests for the ContainerMonitor."""

from __future__ import annotations

import pytest

from repro.core.monitor import ContainerMonitor
from tests.conftest import make_linear_job


class TestContainerMonitor:
    def test_launch_seeds_baseline_immediately(self, sim, ideal_worker):
        monitor = ContainerMonitor(ideal_worker)
        c = ideal_worker.launch(make_linear_job(total_work=100.0))
        measurements = monitor.measure()  # at t=0, zero-length window
        assert measurements[0].n_samples == 0
        assert monitor.tracker.history(c.cid).seeded

    def test_first_interval_produces_complete_sample(self, sim, ideal_worker):
        monitor = ContainerMonitor(ideal_worker)
        ideal_worker.launch(make_linear_job(total_work=100.0))
        monitor.measure()
        sim.run(until=10.0)
        measurements = monitor.measure()
        assert measurements[0].n_samples == 1
        # Linear curve: ΔE = 0.1 over 10 s at usage 1.0 → G = 0.01.
        assert measurements[0].growth == pytest.approx(0.01)

    def test_relative_growth_constant_for_linear_curve(self, sim, ideal_worker):
        monitor = ContainerMonitor(ideal_worker)
        ideal_worker.launch(make_linear_job(total_work=100.0))
        monitor.measure()
        for t in (10.0, 20.0, 30.0):
            sim.run(until=t)
            ms = monitor.measure()
        assert ms[0].relative_growth == pytest.approx(1.0, abs=1e-6)

    def test_measures_every_running_container(self, sim, ideal_worker):
        monitor = ContainerMonitor(ideal_worker)
        ideal_worker.launch(make_linear_job("a"))
        ideal_worker.launch(make_linear_job("b"))
        assert {m.name for m in monitor.measure()} == {"a", "b"}

    def test_exited_container_not_measured(self, sim, ideal_worker):
        monitor = ContainerMonitor(ideal_worker)
        ideal_worker.launch(make_linear_job("a", total_work=5.0))
        sim.run_until_empty()
        assert monitor.measure() == []

    def test_forget_releases_state(self, sim, ideal_worker):
        monitor = ContainerMonitor(ideal_worker)
        c = ideal_worker.launch(make_linear_job())
        monitor.measure()
        monitor.forget(c.cid)
        assert c.cid not in monitor.tracker

    def test_growth_reflects_throttling_invariance(self, sim, ideal_worker):
        """G must not drop when a job is merely throttled (Eq. 2)."""
        monitor = ContainerMonitor(ideal_worker)
        c = ideal_worker.launch(make_linear_job(total_work=1000.0))
        monitor.measure()
        sim.run(until=10.0)
        g_full = monitor.measure()[0].growth
        ideal_worker.update_limit(c.cid, 0.25)
        # Alone on the node soft limits restore full rate; add a competitor
        # to make the limit bite.
        ideal_worker.launch(make_linear_job("rival", total_work=1000.0))
        sim.run(until=30.0)
        g_throttled = monitor.measure()[0].growth
        assert g_throttled == pytest.approx(g_full, rel=1e-6)
