"""Unit tests for Algorithm 2 (listeners) and the worker monitor."""

from __future__ import annotations

from repro.core.algorithm2 import Listener
from repro.core.lists import ContainerLists, ListName
from repro.core.worker_monitor import WorkerMonitor
from tests.conftest import make_linear_job


def _setup(sim, ideal_worker):
    lists = ContainerLists()
    monitor = WorkerMonitor(ideal_worker)
    return Listener(monitor, lists), lists


class TestListener:
    def test_first_step_sees_existing_containers_as_arrivals(
        self, sim, ideal_worker
    ):
        listener, lists = _setup(sim, ideal_worker)
        c = ideal_worker.launch(make_linear_job())
        report = listener.step()
        assert report.arrivals == (c.cid,)
        assert report.interrupt
        assert lists.where(c.cid) is ListName.NL

    def test_no_change_no_interrupt(self, sim, ideal_worker):
        listener, _ = _setup(sim, ideal_worker)
        ideal_worker.launch(make_linear_job())
        listener.step()
        report = listener.step()
        assert not report.interrupt
        assert report.arrivals == () and report.completions == ()

    def test_completion_removes_from_lists(self, sim, ideal_worker):
        listener, lists = _setup(sim, ideal_worker)
        c = ideal_worker.launch(make_linear_job(total_work=10.0))
        listener.step()
        sim.run_until_empty()  # job finishes, exits the pool
        report = listener.step()
        assert report.completions == (c.cid,)
        assert report.interrupt
        assert lists.where(c.cid) is None

    def test_simultaneous_arrival_and_completion(self, sim, ideal_worker):
        listener, lists = _setup(sim, ideal_worker)
        a = ideal_worker.launch(make_linear_job("a", total_work=10.0))
        listener.step()
        sim.run_until_empty()
        b = ideal_worker.launch(make_linear_job("b", total_work=10.0))
        report = listener.step()
        assert report.arrivals == (b.cid,)
        assert report.completions == (a.cid,)
        assert lists.where(b.cid) is ListName.NL

    def test_reports_accumulate(self, sim, ideal_worker):
        listener, _ = _setup(sim, ideal_worker)
        listener.step()
        listener.step()
        assert len(listener.reports) == 2
        assert [r.iteration for r in listener.reports] == [0, 1]


class TestWorkerMonitor:
    def test_iteration_counter(self, sim, ideal_worker):
        monitor = WorkerMonitor(ideal_worker)
        assert monitor.iteration == 0
        monitor.observe()
        monitor.observe()
        assert monitor.iteration == 2

    def test_count_matches_pool(self, sim, ideal_worker):
        monitor = WorkerMonitor(ideal_worker)
        ideal_worker.launch(make_linear_job())
        obs = monitor.observe()
        assert obs.count == 1

    def test_reset_forgets_known(self, sim, ideal_worker):
        monitor = WorkerMonitor(ideal_worker)
        c = ideal_worker.launch(make_linear_job())
        monitor.observe()
        monitor.reset()
        obs = monitor.observe()
        assert obs.delta.added == (c.cid,)
        assert obs.iteration == 0
