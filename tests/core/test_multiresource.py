"""Eq. 2 across resource dimensions (§3.3's multi-resource formulation).

The paper defines growth efficiency per resource r ∈ {CPU, memory,
block I/O, network I/O}.  The evaluation uses CPU, but the implementation
must support the rest; these tests drive full FlowCon runs keyed to the
other dimensions.
"""

from __future__ import annotations

import pytest

from repro.baselines.na import NAPolicy
from repro.config import FlowConConfig, SimulationConfig
from repro.containers.spec import ResourceType
from repro.core.policy import FlowConPolicy
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fixed_three_job


@pytest.mark.parametrize(
    "resource", [ResourceType.MEMORY, ResourceType.BLKIO]
)
class TestAlternateResources:
    def test_full_run_completes(self, resource):
        cfg = SimulationConfig(seed=1, trace=False)
        result = run_scenario(
            fixed_three_job(),
            FlowConPolicy(FlowConConfig(resource=resource)),
            cfg,
        )
        assert len(result.completion_times()) == 3

    def test_classification_still_happens(self, resource):
        cfg = SimulationConfig(seed=1, trace=False)
        policy = FlowConPolicy(FlowConConfig(resource=resource))
        run_scenario(fixed_three_job(), policy, cfg)
        # The VAE's efficiency decays regardless of the denominator
        # resource, so transitions out of NL must have occurred.
        moved = [
            t for t in policy.executor.lists.transitions
            if t.source is not None
        ]
        assert moved


class TestCpuVsMemoryDynamics:
    def test_memory_keyed_run_remains_competitive(self):
        """G wrt memory uses the resident footprint as the denominator;
        since footprints are constant the *relative* decay matches the
        CPU-keyed classification and outcomes stay close."""
        cfg = SimulationConfig(seed=1, trace=False)
        cpu = run_scenario(
            fixed_three_job(),
            FlowConPolicy(FlowConConfig(resource=ResourceType.CPU)),
            cfg,
        )
        mem = run_scenario(
            fixed_three_job(),
            FlowConPolicy(FlowConConfig(resource=ResourceType.MEMORY)),
            cfg,
        )
        na = run_scenario(fixed_three_job(), NAPolicy(), cfg)
        # Both beat NA for the late-arriving MNIST-TF.
        assert cpu.completion_times()["Job-3"] < na.completion_times()["Job-3"]
        assert mem.completion_times()["Job-3"] < na.completion_times()["Job-3"]

    def test_netio_without_usage_degrades_gracefully(self):
        """Zoo jobs have zero network I/O; G wrt NETIO is always 0 ⇒
        relative growth stays 1.0 ⇒ everyone stays NL at limit 1 ⇒
        behaviour degrades to NA rather than misbehaving."""
        cfg = SimulationConfig(seed=1, trace=False)
        net = run_scenario(
            fixed_three_job(),
            FlowConPolicy(FlowConConfig(resource=ResourceType.NETIO)),
            cfg,
        )
        na = run_scenario(fixed_three_job(), NAPolicy(), cfg)
        for label, t_na in na.completion_times().items():
            assert net.completion_times()[label] == pytest.approx(
                t_na, rel=0.05
            )
