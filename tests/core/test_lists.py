"""Unit + property tests for the NL/WL/CL lists."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.lists import ContainerLists, ListName


class TestPlacement:
    def test_place_and_where(self):
        lists = ContainerLists()
        lists.place(1, ListName.NL)
        assert lists.where(1) is ListName.NL
        assert lists.in_list(1, ListName.NL)

    def test_move_between_lists(self):
        lists = ContainerLists()
        lists.place(1, ListName.NL)
        lists.place(1, ListName.WL, time=5.0)
        assert lists.where(1) is ListName.WL
        assert not lists.in_list(1, ListName.NL)

    def test_same_list_placement_is_noop(self):
        lists = ContainerLists()
        lists.place(1, ListName.NL)
        n = len(lists.transitions)
        lists.place(1, ListName.NL)
        assert len(lists.transitions) == n

    def test_remove(self):
        lists = ContainerLists()
        lists.place(1, ListName.CL)
        lists.remove(1)
        assert lists.where(1) is None
        lists.remove(1)  # idempotent

    def test_transitions_recorded(self):
        lists = ContainerLists()
        lists.place(1, ListName.NL, time=1.0)
        lists.place(1, ListName.WL, time=2.0)
        lists.remove(1, time=3.0)
        moves = [(t.source, t.target) for t in lists.transitions]
        assert moves == [
            (None, ListName.NL),
            (ListName.NL, ListName.WL),
            (ListName.WL, None),
        ]


class TestQueries:
    def test_counts(self):
        lists = ContainerLists()
        lists.place(1, ListName.NL)
        lists.place(2, ListName.NL)
        lists.place(3, ListName.CL)
        assert lists.counts() == {ListName.NL: 2, ListName.WL: 0, ListName.CL: 1}

    def test_all_completing_requires_members(self):
        lists = ContainerLists()
        assert not lists.all_completing()  # vacuously false
        lists.place(1, ListName.CL)
        assert lists.all_completing()
        lists.place(2, ListName.NL)
        assert not lists.all_completing()

    def test_tracked_and_members_are_copies(self):
        lists = ContainerLists()
        lists.place(1, ListName.NL)
        members = lists.members(ListName.NL)
        members.add(999)
        assert 999 not in lists.members(ListName.NL)

    def test_clear(self):
        lists = ContainerLists()
        lists.place(1, ListName.NL)
        lists.clear()
        assert lists.tracked() == set()


class TestInvariant:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.sampled_from([ListName.NL, ListName.WL, ListName.CL, None]),
            ),
            max_size=100,
        )
    )
    def test_each_container_in_at_most_one_list(self, ops):
        """Property: arbitrary place/remove sequences never violate the
        one-list invariant the paper maintains implicitly."""
        lists = ContainerLists()
        for cid, target in ops:
            if target is None:
                lists.remove(cid)
            else:
                lists.place(cid, target)
        seen: dict[int, int] = {}
        for name in ListName:
            for cid in lists.members(name):
                seen[cid] = seen.get(cid, 0) + 1
        assert all(count == 1 for count in seen.values())
        assert set(seen) == lists.tracked()
