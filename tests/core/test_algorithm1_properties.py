"""Property-based tests of Algorithm 1 over random measurement streams."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.config import FlowConConfig
from repro.core.algorithm1 import run_algorithm1
from repro.core.lists import ContainerLists, ListName
from repro.core.monitor import Measurement


def measurement(cid: int, rel: float, growth: float, n: int) -> Measurement:
    return Measurement(
        cid=cid,
        name=f"c{cid}",
        growth=growth,
        relative_growth=rel,
        n_samples=n,
        eval_value=1.0,
    )


round_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=6),          # cid
        st.floats(min_value=0.0, max_value=1.0),        # relative growth
        st.floats(min_value=0.0, max_value=10.0),       # raw growth
        st.integers(min_value=0, max_value=5),          # samples
    ),
    min_size=1,
    max_size=6,
    unique_by=lambda t: t[0],
)


class TestAlgorithm1Properties:
    @given(st.lists(round_strategy, min_size=1, max_size=10))
    def test_limits_always_valid_and_lists_consistent(self, rounds):
        cfg = FlowConConfig(alpha=0.05, itval=20.0, beta=2.0)
        lists = ContainerLists()
        for round_data in rounds:
            ms = [measurement(*row) for row in round_data]
            result = run_algorithm1(ms, lists, cfg, time=0.0)
            # Every emitted limit is a legal docker --cpus value.
            for value in result.limit_updates.values():
                assert 0.0 < value <= 1.0
            # Every measured container is classified into exactly one list.
            for m in ms:
                assert lists.where(m.cid) in (
                    ListName.NL, ListName.WL, ListName.CL
                )
            # Containers in WL never receive an update (line 24).
            for m in ms:
                if result.classifications[m.cid] is ListName.WL:
                    assert m.cid not in result.limit_updates
            # all_completing ⇔ every measured container ended in CL.
            expected = all(
                result.classifications[m.cid] is ListName.CL for m in ms
            )
            assert result.all_completing == expected
            if result.all_completing:
                assert all(
                    v == 1.0 for v in result.limit_updates.values()
                )

    @given(round_strategy)
    def test_idempotent_when_growth_static(self, round_data):
        """Feeding identical measurements twice yields identical updates
        the second time (classification converges, no oscillation)."""
        cfg = FlowConConfig(alpha=0.05, itval=20.0)
        lists = ContainerLists()
        ms = [measurement(*row) for row in round_data]
        # Run until classification fixpoint (≤3 rounds: NL→WL→CL).
        for _ in range(3):
            run_algorithm1(ms, lists, cfg, time=0.0)
        before = {m.cid: lists.where(m.cid) for m in ms}
        result = run_algorithm1(ms, lists, cfg, time=0.0)
        after = {m.cid: lists.where(m.cid) for m in ms}
        assert before == after

    @given(round_strategy)
    def test_fresh_containers_always_get_full_limit(self, round_data):
        cfg = FlowConConfig(alpha=0.05, itval=20.0, min_samples=2)
        lists = ContainerLists()
        ms = [measurement(*row) for row in round_data]
        result = run_algorithm1(ms, lists, cfg, time=0.0)
        for m in ms:
            if m.n_samples < 2 and m.cid in result.limit_updates:
                assert result.limit_updates[m.cid] == 1.0

    @given(round_strategy, st.floats(min_value=1.0, max_value=8.0))
    def test_cl_floor_respected(self, round_data, beta):
        cfg = FlowConConfig(alpha=0.05, itval=20.0, beta=beta)
        lists = ContainerLists()
        ms = [measurement(*row) for row in round_data]
        result = None
        for _ in range(3):
            result = run_algorithm1(ms, lists, cfg, time=0.0)
        if result.all_completing:
            return
        floor = 1.0 / (beta * len(ms))
        for m in ms:
            if (
                result.classifications[m.cid] is ListName.CL
                and m.cid in result.limit_updates
            ):
                assert result.limit_updates[m.cid] >= min(floor, 1.0) - 1e-12
