"""Unit tests for Eq. 1 / Eq. 2 and the efficiency trackers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.containers.spec import ResourceType, ResourceVector
from repro.core.efficiency import (
    EfficiencyHistory,
    GrowthTracker,
    growth_efficiency,
    progress_score,
)
from repro.errors import MetricsError


class TestEq1:
    def test_progress_score_definition(self):
        # |E(t_i) − E(t_{i−1})| / (t_i − t_{i−1})
        assert progress_score(1.0, 0.4, 3.0) == pytest.approx(0.2)

    def test_direction_agnostic(self):
        assert progress_score(0.4, 1.0, 3.0) == progress_score(1.0, 0.4, 3.0)

    def test_zero_interval_raises(self):
        with pytest.raises(MetricsError):
            progress_score(1.0, 0.5, 0.0)

    @given(
        st.floats(min_value=-1e3, max_value=1e3),
        st.floats(min_value=-1e3, max_value=1e3),
        st.floats(min_value=1e-3, max_value=1e3),
    )
    def test_always_nonnegative(self, e0, e1, dt):
        assert progress_score(e0, e1, dt) >= 0.0


class TestEq2:
    def test_growth_efficiency_definition(self):
        assert growth_efficiency(0.2, 0.5) == pytest.approx(0.4)

    def test_zero_usage_gives_zero_not_infinity(self):
        assert growth_efficiency(0.5, 0.0) == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(MetricsError):
            growth_efficiency(-0.1, 0.5)
        with pytest.raises(MetricsError):
            growth_efficiency(0.1, -0.5)


class TestEfficiencyHistory:
    def _usage(self, cpu: float) -> ResourceVector:
        return ResourceVector(cpu=cpu)

    def test_first_observation_seeds_baseline(self):
        hist = EfficiencyHistory(cid=1, resource=ResourceType.CPU)
        assert hist.observe(0.0, 1.0, self._usage(0.5)) is None
        assert hist.seeded
        assert hist.n_samples == 0

    def test_second_observation_yields_sample(self):
        hist = EfficiencyHistory(cid=1, resource=ResourceType.CPU)
        hist.observe(0.0, 1.0, self._usage(0.5))
        sample = hist.observe(10.0, 0.5, self._usage(0.5))
        assert sample.progress == pytest.approx(0.05)
        assert sample.growth == pytest.approx(0.1)

    def test_peak_tracking_and_relative_growth(self):
        hist = EfficiencyHistory(cid=1, resource=ResourceType.CPU)
        hist.observe(0.0, 1.0, self._usage(1.0))
        hist.observe(10.0, 0.5, self._usage(1.0))   # G = 0.05 (peak)
        hist.observe(20.0, 0.45, self._usage(1.0))  # G = 0.005
        assert hist.peak_growth == pytest.approx(0.05)
        assert hist.relative_growth() == pytest.approx(0.1)

    def test_relative_growth_is_one_before_any_peak(self):
        hist = EfficiencyHistory(cid=1, resource=ResourceType.CPU)
        assert hist.relative_growth() == 1.0
        hist.observe(0.0, 1.0, self._usage(1.0))
        hist.observe(10.0, 1.0, self._usage(1.0))  # no change → G = 0
        assert hist.relative_growth() == 1.0  # still no peak

    def test_non_monotone_time_ignored(self):
        hist = EfficiencyHistory(cid=1, resource=ResourceType.CPU)
        hist.observe(5.0, 1.0, self._usage(1.0))
        assert hist.observe(5.0, 0.9, self._usage(1.0)) is None
        assert hist.observe(4.0, 0.9, self._usage(1.0)) is None

    def test_throttling_invariance(self):
        """Eq. 2's point: G is invariant to the CPU share granted.

        Half the usage produces half the per-wall-second progress, so
        P/R stays constant — convergence is measured against *work*.
        """
        full = EfficiencyHistory(cid=1, resource=ResourceType.CPU)
        full.observe(0.0, 1.0, self._usage(1.0))
        s_full = full.observe(10.0, 0.8, self._usage(1.0))

        throttled = EfficiencyHistory(cid=2, resource=ResourceType.CPU)
        throttled.observe(0.0, 1.0, self._usage(0.5))
        # Same work → same ΔE but over 20 s at half usage.
        s_thr = throttled.observe(20.0, 0.8, self._usage(0.5))
        assert s_full.growth == pytest.approx(s_thr.growth)


class TestGrowthTracker:
    def test_histories_created_on_touch(self):
        tracker = GrowthTracker()
        hist = tracker.history(7)
        assert hist.cid == 7
        assert 7 in tracker

    def test_forget(self):
        tracker = GrowthTracker()
        tracker.history(7)
        tracker.forget(7)
        assert 7 not in tracker
        tracker.forget(7)  # idempotent

    def test_observe_routes_to_history(self):
        tracker = GrowthTracker()
        tracker.observe(3, 0.0, 1.0, ResourceVector(cpu=1.0))
        sample = tracker.observe(3, 10.0, 0.5, ResourceVector(cpu=1.0))
        assert sample is not None
        assert tracker.known_cids() == {3}

    def test_resource_dimension_respected(self):
        tracker = GrowthTracker(ResourceType.MEMORY)
        tracker.observe(1, 0.0, 1.0, ResourceVector(cpu=1.0, memory=0.25))
        sample = tracker.observe(1, 10.0, 0.5, ResourceVector(cpu=1.0, memory=0.25))
        assert sample.usage == pytest.approx(0.25)
        assert sample.growth == pytest.approx(0.05 / 0.25)
