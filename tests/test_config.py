"""Unit tests for configuration validation."""

from __future__ import annotations

import pytest

from repro.config import FlowConConfig, SimulationConfig
from repro.errors import ConfigError


class TestFlowConConfig:
    def test_defaults_valid(self):
        cfg = FlowConConfig()
        assert cfg.alpha == 0.05 and cfg.itval == 20.0

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1, 1.5])
    def test_alpha_bounds(self, alpha):
        with pytest.raises(ConfigError):
            FlowConConfig(alpha=alpha)

    def test_itval_positive(self):
        with pytest.raises(ConfigError):
            FlowConConfig(itval=0.0)

    def test_beta_positive_or_none(self):
        FlowConConfig(beta=None)  # allowed (ablation)
        with pytest.raises(ConfigError):
            FlowConConfig(beta=0.0)

    def test_backoff_factor_exceeds_one(self):
        with pytest.raises(ConfigError):
            FlowConConfig(backoff_factor=1.0)

    def test_max_itval_at_least_itval(self):
        with pytest.raises(ConfigError):
            FlowConConfig(itval=60.0, max_itval=30.0)

    def test_min_samples_at_least_one(self):
        with pytest.raises(ConfigError):
            FlowConConfig(min_samples=0)

    def test_poll_interval_positive(self):
        with pytest.raises(ConfigError):
            FlowConConfig(listener_poll_interval=0.0)

    def test_with_params_returns_new_instance(self):
        cfg = FlowConConfig()
        other = cfg.with_params(alpha=0.10)
        assert other.alpha == 0.10 and cfg.alpha == 0.05

    def test_describe_format(self):
        assert FlowConConfig(alpha=0.03, itval=30).describe() == "FlowCon-3%-30"


class TestSimulationConfig:
    def test_defaults_valid(self):
        cfg = SimulationConfig()
        assert cfg.capacity == 1.0

    def test_capacity_positive(self):
        with pytest.raises(ConfigError):
            SimulationConfig(capacity=0.0)

    def test_sample_interval_positive(self):
        with pytest.raises(ConfigError):
            SimulationConfig(sample_interval=-1.0)

    def test_horizon_positive_or_none(self):
        SimulationConfig(horizon=None)
        with pytest.raises(ConfigError):
            SimulationConfig(horizon=0.0)

    def test_with_params(self):
        cfg = SimulationConfig().with_params(seed=9)
        assert cfg.seed == 9

    def test_shards_default_and_validation(self):
        assert SimulationConfig().shards == 1
        cfg = SimulationConfig(fleet_mode=True, shards=4)
        assert cfg.shards == 4
        with pytest.raises(ConfigError):
            SimulationConfig(shards=0)
        with pytest.raises(ConfigError):
            SimulationConfig(fleet_mode=True, shards=-2)

    def test_shards_require_fleet_mode(self):
        """Shards slice the fused arena, so the arena must exist."""
        with pytest.raises(ConfigError, match="fleet_mode"):
            SimulationConfig(shards=2)
        cfg = SimulationConfig(shards=1)  # default composes with anything
        assert not cfg.fleet_mode
        with pytest.raises(ConfigError):
            cfg.with_params(shards=2)  # still enforced through with_params
        assert cfg.with_params(fleet_mode=True, shards=2).shards == 2


class TestSchedulingPolicyFields:
    def test_admission_default_and_validation(self):
        assert SimulationConfig().admission == "fifo"
        SimulationConfig(admission="wfq")
        with pytest.raises(ConfigError):
            SimulationConfig(admission="lifo")

    def test_autoscale_default_and_validation(self):
        assert SimulationConfig().autoscale == "none"
        SimulationConfig(autoscale="queue_depth")
        with pytest.raises(ConfigError):
            SimulationConfig(autoscale="manual")

    def test_fabric_default_and_validation(self):
        assert SimulationConfig().fabric == "ideal"
        SimulationConfig(fabric="partition(25..55):retry(max=8,base=0.5)")
        SimulationConfig(fabric="drop(0.05)+delay(exp,0.2):noretry")
        with pytest.raises(ConfigError):
            SimulationConfig(fabric="carrier-pigeon")
        with pytest.raises(ConfigError):
            SimulationConfig(fabric="drop(1.5)")
