"""Shared pytest fixtures.

The fixtures build the standard small worlds used across suites: a fresh
simulator, an ideal (no-interference) worker, and a tiny linear job whose
behaviour is trivially predictable (loss falls linearly from 1 to 0 over
``total_work`` CPU-seconds).
"""

from __future__ import annotations

import pytest

from repro.cluster.contention import ContentionModel
from repro.cluster.worker import Worker
from repro.containers.spec import ResourceSpec
from repro.simcore.engine import Simulator
from repro.workloads.curves import PiecewiseLinearCurve
from repro.workloads.evalfn import EvalFunction, EvalKind
from repro.workloads.job import TrainingJob


def make_linear_job(
    name: str = "lin",
    total_work: float = 100.0,
    demand: float = 1.0,
    e0: float = 1.0,
    e_final: float = 0.0,
    warmup: float = 0.0,
) -> TrainingJob:
    """A job whose E falls linearly with work — fully predictable."""
    curve = PiecewiseLinearCurve([(0.0, e0), (1.0, e_final)])
    evalfn = EvalFunction(
        kind=EvalKind.SQUARED_LOSS, start=e0, converged=e_final
    )
    return TrainingJob(
        name=name,
        total_work=total_work,
        curve=curve,
        evalfn=evalfn,
        footprint=ResourceSpec(cpu_demand=demand, memory=0.1),
        warmup_work=warmup,
        total_iterations=1000,
    )


@pytest.fixture
def sim() -> Simulator:
    """A fresh, traced simulator."""
    return Simulator(seed=7)


@pytest.fixture
def ideal_worker(sim: Simulator) -> Worker:
    """A worker with no interference or jitter (exact arithmetic)."""
    return Worker(sim, contention=ContentionModel.ideal())


@pytest.fixture
def linear_job() -> TrainingJob:
    """One predictable 100-cpu-second job."""
    return make_linear_job()
