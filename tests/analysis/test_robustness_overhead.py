"""Unit tests for the robustness and overhead studies."""

from __future__ import annotations

import pytest

from repro.analysis.overhead import overhead_study
from repro.analysis.robustness import seed_study
from repro.config import SimulationConfig
from repro.errors import ExperimentError
from repro.experiments.scenarios import fixed_three_job, random_five_job


class TestSeedStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return seed_study(
            random_five_job,
            seeds=[0, 1, 2],
            sim_template=SimulationConfig(trace=False),
        )

    def test_one_row_per_seed(self, study):
        assert study.n == 3
        assert study.win_rates.shape == (3,)

    def test_win_rates_are_fractions(self, study):
        assert ((study.win_rates >= 0) & (study.win_rates <= 1)).all()

    def test_flowcon_wins_majority_across_seeds(self, study):
        assert study.summary()["mean_win_rate"] >= 0.6

    def test_makespan_never_badly_sacrificed(self, study):
        assert study.summary()["worst_makespan_reduction"] > -2.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ExperimentError):
            seed_study(random_five_job, seeds=[])


class TestOverheadStudy:
    @pytest.fixture(scope="class")
    def samples(self):
        return overhead_study(
            fixed_three_job(),
            itvals=[20.0, 60.0],
            sim_config=SimulationConfig(seed=1, trace=False),
        )

    def test_grid_complete(self, samples):
        assert len(samples) == 4  # 2 itvals × {backoff on, off}

    def test_smaller_interval_means_more_runs(self, samples):
        by_key = {(s.itval, s.backoff_enabled): s for s in samples}
        assert (
            by_key[(20.0, True)].algorithm_runs
            > by_key[(60.0, True)].algorithm_runs
        )

    def test_backoff_reduces_runs(self, samples):
        by_key = {(s.itval, s.backoff_enabled): s for s in samples}
        assert (
            by_key[(20.0, True)].algorithm_runs
            < by_key[(20.0, False)].algorithm_runs
        )

    def test_rates_positive(self, samples):
        assert all(s.runs_per_100s > 0 for s in samples)

    def test_empty_itvals_rejected(self):
        with pytest.raises(ExperimentError):
            overhead_study(fixed_three_job(), itvals=[])
