"""Unit tests for parameter-grid sweeps."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import sweep_grid
from repro.config import FlowConConfig, SimulationConfig
from repro.errors import ExperimentError
from repro.experiments.scenarios import fixed_three_job


@pytest.fixture(scope="module")
def grid():
    return sweep_grid(
        fixed_three_job(),
        alphas=[0.05, 0.10],
        itvals=[20.0, 40.0],
        sim_config=SimulationConfig(seed=1, trace=False),
    )


class TestSweepGrid:
    def test_grid_size(self, grid):
        assert len(grid.cells) == 4

    def test_cell_lookup(self, grid):
        cell = grid.cell(0.05, 20.0)
        assert cell.alpha == 0.05 and cell.itval == 20.0

    def test_missing_cell_raises(self, grid):
        with pytest.raises(ExperimentError):
            grid.cell(0.5, 999.0)

    def test_best_cell_for_job(self, grid):
        best = grid.best_cell("Job-3")
        assert best.report.reductions["Job-3"] == max(
            c.report.reductions["Job-3"] for c in grid.cells
        )

    def test_makespan_range_tight(self, grid):
        lo, hi = grid.makespan_range()
        assert -2.0 < lo <= hi < 10.0

    def test_empty_axes_rejected(self):
        with pytest.raises(ExperimentError):
            sweep_grid(fixed_three_job(), alphas=[], itvals=[20.0])

    def test_base_config_applies_to_cells(self):
        grid = sweep_grid(
            fixed_three_job(),
            alphas=[0.05],
            itvals=[20.0],
            sim_config=SimulationConfig(seed=1, trace=False),
            base_config=FlowConConfig(beta=None),
        )
        assert "FlowCon-5%-20" in grid.cells[0].report.treatment_name
