"""Unit tests for comparison reports."""

from __future__ import annotations

import pytest

from repro.analysis.compare import compare_runs
from repro.errors import MetricsError
from repro.metrics.summary import CompletionRecord, RunSummary


def summary(records):
    return RunSummary(
        [
            CompletionRecord(label, "img", i, sub, fin, fin - sub)
            for i, (label, sub, fin) in enumerate(records)
        ]
    )


class TestCompareRuns:
    def test_reductions_per_job(self):
        na = summary([("Job-1", 0, 100), ("Job-2", 0, 200)])
        fc = summary([("Job-1", 0, 80), ("Job-2", 0, 220)])
        report = compare_runs(na, fc)
        assert report.reductions["Job-1"] == pytest.approx(20.0)
        assert report.reductions["Job-2"] == pytest.approx(-10.0)

    def test_win_loss_counts(self):
        na = summary([("a", 0, 100), ("b", 0, 100), ("c", 0, 100)])
        fc = summary([("a", 0, 90), ("b", 0, 110), ("c", 0, 50)])
        report = compare_runs(na, fc)
        assert report.wins == 2 and report.losses == 1 and report.n_jobs == 3

    def test_best_and_worst(self):
        na = summary([("a", 0, 100), ("b", 0, 100)])
        fc = summary([("a", 0, 60), ("b", 0, 130)])
        report = compare_runs(na, fc)
        assert report.best == ("a", pytest.approx(40.0))
        assert report.worst == ("b", pytest.approx(-30.0))

    def test_makespan_reduction(self):
        na = summary([("a", 0, 200)])
        fc = summary([("a", 0, 190)])
        report = compare_runs(na, fc)
        assert report.makespan_reduction == pytest.approx(5.0)

    def test_mismatched_jobs_rejected(self):
        na = summary([("a", 0, 100)])
        fc = summary([("b", 0, 100)])
        with pytest.raises(MetricsError):
            compare_runs(na, fc)

    def test_mean_reduction(self):
        na = summary([("a", 0, 100), ("b", 0, 100)])
        fc = summary([("a", 0, 80), ("b", 0, 90)])
        assert compare_runs(na, fc).mean_reduction() == pytest.approx(15.0)
