"""Unit tests for list-dynamics analysis."""

from __future__ import annotations

import pytest

from repro.analysis.listdynamics import dwell_times, list_timeline
from repro.core.lists import ContainerLists, ListName
from repro.errors import ExperimentError


@pytest.fixture
def journal():
    lists = ContainerLists()
    lists.place(1, ListName.NL, time=0.0)
    lists.place(2, ListName.NL, time=10.0)
    lists.place(1, ListName.WL, time=20.0)
    lists.place(1, ListName.CL, time=40.0)
    lists.remove(1, time=60.0)
    return lists


class TestListTimeline:
    def test_counts_step_at_transitions(self, journal):
        series = list_timeline(journal)
        nl = series[ListName.NL]
        assert nl.value_at(5.0) == 1
        assert nl.value_at(15.0) == 2
        assert nl.value_at(25.0) == 1  # cid 1 moved to WL

    def test_wl_and_cl_windows(self, journal):
        series = list_timeline(journal)
        assert series[ListName.WL].value_at(30.0) == 1
        assert series[ListName.WL].value_at(45.0) == 0
        assert series[ListName.CL].value_at(50.0) == 1
        assert series[ListName.CL].value_at(60.0) == 0

    def test_empty_journal_rejected(self):
        with pytest.raises(ExperimentError):
            list_timeline(ContainerLists())


class TestDwellTimes:
    def test_dwell_accumulates_per_list(self, journal):
        dwell = dwell_times(journal)
        assert dwell[ListName.NL][1] == pytest.approx(20.0)
        assert dwell[ListName.WL][1] == pytest.approx(20.0)
        assert dwell[ListName.CL][1] == pytest.approx(20.0)

    def test_open_membership_clipped_at_horizon(self, journal):
        dwell = dwell_times(journal, end_time=100.0)
        assert dwell[ListName.NL][2] == pytest.approx(90.0)

    def test_default_horizon_is_last_transition(self, journal):
        dwell = dwell_times(journal)
        assert dwell[ListName.NL][2] == pytest.approx(50.0)

    def test_flowcon_run_produces_consistent_dwells(self, sim, ideal_worker):
        from repro.config import FlowConConfig
        from repro.core.executor import Executor
        from repro.workloads.curves import ExponentialCurve
        from tests.conftest import make_linear_job

        executor = Executor(ideal_worker, FlowConConfig())
        executor.start()
        fast = make_linear_job("fast", total_work=300.0)
        fast.curve = ExponentialCurve(1.0, 0.0, tau=0.02)
        ideal_worker.launch(fast)
        ideal_worker.launch(make_linear_job("slow", total_work=300.0))
        sim.run(until=250.0)
        dwell = dwell_times(executor.lists, end_time=250.0)
        # The fast-converging job spent real time in CL; the linear job
        # never left NL.
        assert sum(dwell[ListName.CL].values()) > 0
        series = list_timeline(executor.lists)
        assert series[ListName.NL].value_at(5.0) >= 1
