"""Unit tests for queue-driven worker-fleet autoscaling."""

from __future__ import annotations

import pytest

from repro.cluster.autoscale import (
    AUTOSCALERS,
    NoAutoscale,
    ProgressAutoscale,
    QueueDepthAutoscale,
    make_autoscale,
)
from repro.cluster.contention import ContentionModel
from repro.cluster.manager import Manager
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.errors import ClusterError, ConfigError
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job


def _submission(label, t, work=50.0):
    return JobSubmission(
        label=label, job=make_linear_job(label, work), submit_time=t
    )


def _cluster(n=1, slots=1, seed=0, autoscale=None, rebalance=None):
    sim = Simulator(seed=seed, trace=False)
    workers = [
        Worker(
            sim,
            name=f"worker-{i}",
            contention=ContentionModel.ideal(),
            max_containers=slots,
        )
        for i in range(n)
    ]

    def factory(name):
        return Worker(
            sim,
            name=name,
            contention=ContentionModel.ideal(),
            max_containers=slots,
        )

    manager = Manager(
        sim,
        workers,
        autoscale=autoscale,
        rebalance=rebalance,
        worker_factory=factory,
    )
    return sim, manager


class TestRegistry:
    def test_names(self):
        assert sorted(AUTOSCALERS) == ["none", "progress", "queue_depth"]

    def test_default_is_none(self):
        assert isinstance(make_autoscale(None), NoAutoscale)

    def test_unknown_rejected(self):
        with pytest.raises(ClusterError):
            make_autoscale("manual")

    def test_instance_passes_through(self):
        policy = QueueDepthAutoscale(up_threshold=2)
        assert make_autoscale(policy) is policy

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            QueueDepthAutoscale(up_threshold=0)
        with pytest.raises(ConfigError):
            ProgressAutoscale(up_backlog=0.0)
        with pytest.raises(ConfigError):
            QueueDepthAutoscale(provision_delay=-1.0)
        with pytest.raises(ConfigError):
            QueueDepthAutoscale(min_workers=0)
        with pytest.raises(ConfigError):
            QueueDepthAutoscale(min_workers=4, max_workers=2)
        with pytest.raises(ConfigError):
            QueueDepthAutoscale(cooldown=-0.1)


class TestScaleUp:
    def test_deep_queue_provisions_after_delay(self):
        policy = QueueDepthAutoscale(
            up_threshold=2, provision_delay=30.0, cooldown=0.0
        )
        sim, manager = _cluster(n=1, slots=1, autoscale=policy)
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0, work=200.0) for i in range(1, 5)]
        )
        sim.run(until=1.0)
        assert manager.queue_len == 3
        assert manager.provisions_pending > 0
        assert manager.fleet_size == 1
        sim.run(until=31.0)
        assert manager.fleet_size > 1
        names = [w.name for w in manager.workers]
        assert len(set(names)) == len(names)  # no duplicate node names

    def test_provisioned_worker_absorbs_queue(self):
        policy = QueueDepthAutoscale(
            up_threshold=2, provision_delay=10.0, cooldown=0.0
        )
        sim, manager = _cluster(n=1, slots=1, autoscale=policy)
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0, work=100.0) for i in range(1, 4)]
        )
        sim.run(until=11.0)
        assert manager.queue_len < 2  # drained into new capacity
        sim.run_until_empty()
        assert len(manager.placements) == 3

    def test_max_workers_ceiling_binds(self):
        policy = QueueDepthAutoscale(
            up_threshold=1, provision_delay=5.0, max_workers=2, cooldown=0.0
        )
        sim, manager = _cluster(n=1, slots=1, autoscale=policy)
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0, work=150.0) for i in range(1, 9)]
        )
        sim.run(until=100.0)
        assert manager.fleet_size + manager.provisions_pending <= 2

    def test_cooldown_throttles_provisioning(self):
        eager = QueueDepthAutoscale(
            up_threshold=1, provision_delay=5.0, cooldown=0.0
        )
        throttled = QueueDepthAutoscale(
            up_threshold=1, provision_delay=5.0, cooldown=1000.0
        )
        results = {}
        for name, policy in (("eager", eager), ("throttled", throttled)):
            sim, manager = _cluster(n=1, slots=1, autoscale=policy)
            manager.submit_all(
                [
                    _submission(f"Job-{i}", float(i), work=300.0)
                    for i in range(1, 7)
                ]
            )
            sim.run(until=60.0)
            results[name] = manager.fleet_size + manager.provisions_pending
        assert results["throttled"] < results["eager"]

    def test_hook_fires_for_provisioned_workers(self):
        policy = QueueDepthAutoscale(
            up_threshold=1, provision_delay=5.0, cooldown=0.0
        )
        sim, manager = _cluster(n=1, slots=1, autoscale=policy)
        joined = []
        manager.provision_hooks.append(lambda w: joined.append(w.name))
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0, work=120.0) for i in range(1, 4)]
        )
        sim.run(until=20.0)
        assert joined  # at least one node joined through the hook


class TestScaleDown:
    def _drain_shape(self, policy):
        """One long job + a burst that forces a scale-up, then a lull."""
        sim, manager = _cluster(n=1, slots=2, autoscale=policy)
        manager.submit_all(
            [_submission("long", 0.0, work=400.0)]
            + [
                _submission(f"burst-{i}", 1.0, work=30.0)
                for i in range(1, 6)
            ]
        )
        return sim, manager

    def test_fleet_shrinks_back_to_floor(self):
        policy = QueueDepthAutoscale(
            up_threshold=2, provision_delay=5.0, cooldown=0.0
        )
        sim, manager = self._drain_shape(policy)
        sim.run(until=30.0)
        grew_to = manager.fleet_size
        assert grew_to > 1
        sim.run_until_empty()
        assert manager.fleet_size == 1  # back to the initial-fleet floor
        assert manager.fleet_timeline[-1][1] == 1
        assert all(not w.draining for w in manager.workers)

    def test_never_strands_a_container(self):
        """Every submitted job completes despite drain/retire churn."""
        policy = QueueDepthAutoscale(
            up_threshold=2, provision_delay=5.0, cooldown=0.0
        )
        sim, manager = self._drain_shape(policy)
        finished = []
        for worker in manager.workers:
            worker.exit_hooks.append(lambda c: finished.append(c.name))
        manager.provision_hooks.append(
            lambda w: w.exit_hooks.append(
                lambda c: finished.append(c.name)
            )
        )
        sim.run_until_empty()
        assert sorted(finished) == sorted(
            ["long"] + [f"burst-{i}" for i in range(1, 6)]
        )

    def test_retired_workers_leave_the_timeline_trail(self):
        policy = QueueDepthAutoscale(
            up_threshold=2, provision_delay=5.0, cooldown=0.0
        )
        sim, manager = self._drain_shape(policy)
        sim.run_until_empty()
        sizes = [n for _, n in manager.fleet_timeline]
        assert sizes[0] == 1 and sizes[-1] == 1 and max(sizes) > 1
        times = [t for t, _ in manager.fleet_timeline]
        assert times == sorted(times)

    def test_draining_worker_attracts_no_placements(self):
        sim, manager = _cluster(n=2, slots=2)
        worker = manager.workers[1]
        worker.draining = True
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0) for i in range(1, 4)]
        )
        sim.run(until=1.0)
        assert not worker.running_containers()
        assert manager.queue_len == 1  # only worker-0's two slots usable


class TestProgressAutoscale:
    def test_backlog_signal_provisions(self):
        policy = ProgressAutoscale(
            up_backlog=50.0, provision_delay=5.0, cooldown=0.0
        )
        sim, manager = _cluster(n=1, slots=1, autoscale=policy)
        # 3 × 100 s of queued work on a capacity-1 fleet = 300 s backlog.
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0, work=100.0) for i in range(1, 5)]
        )
        sim.run(until=6.0)
        assert manager.fleet_size > 1

    def test_small_backlog_does_not_provision(self):
        policy = ProgressAutoscale(
            up_backlog=500.0, provision_delay=5.0, cooldown=0.0
        )
        sim, manager = _cluster(n=1, slots=1, autoscale=policy)
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0, work=20.0) for i in range(1, 4)]
        )
        sim.run(until=10.0)
        assert manager.fleet_size == 1
        assert manager.provisions_pending == 0


class TestDeterminismAndParity:
    def _run(self, autoscale):
        sim, manager = _cluster(n=1, slots=2, seed=3, autoscale=autoscale)
        finished = []

        def record(c):
            finished.append((c.name, repr(c.finished_at)))

        for worker in manager.workers:
            worker.exit_hooks.append(record)
        manager.provision_hooks.append(
            lambda w: w.exit_hooks.append(record)
        )
        manager.submit_all(
            [
                _submission(f"Job-{i}", float(i), work=40.0 + 7.0 * i)
                for i in range(1, 10)
            ]
        )
        sim.run_until_empty()
        return sorted(finished), list(manager.fleet_timeline)

    def test_same_seed_repeats_are_bit_identical(self):
        policy = lambda: QueueDepthAutoscale(  # noqa: E731
            up_threshold=2, provision_delay=5.0, cooldown=0.0
        )
        a_fin, a_fleet = self._run(policy())
        b_fin, b_fleet = self._run(policy())
        assert a_fin == b_fin
        assert a_fleet == b_fleet

    def test_none_is_bit_identical_to_no_autoscale_argument(self):
        explicit, explicit_fleet = self._run("none")
        default, default_fleet = self._run(None)
        assert explicit == default
        assert explicit_fleet == default_fleet == [(0.0, 1)]


class TestDescribe:
    def test_policy_descriptions(self):
        assert NoAutoscale().describe() == "none"
        assert "depth 4" in QueueDepthAutoscale().describe()
        assert "120s backlog" in ProgressAutoscale().describe()

    def test_bind_resolves_min_workers_to_initial_fleet(self):
        policy = QueueDepthAutoscale()
        policy.bind(None, fleet_size=3)
        assert policy.min_workers == 3
        pinned = QueueDepthAutoscale(min_workers=1)
        pinned.bind(None, fleet_size=3)
        assert pinned.min_workers == 1


class TestArrivalRearm:
    def test_queued_arrival_undrains_a_worker_with_free_slots(self):
        """A job never waits on slots a draining worker still holds."""
        policy = QueueDepthAutoscale(
            up_threshold=4, provision_delay=5.0, cooldown=0.0
        )
        sim, manager = _cluster(n=2, slots=2, autoscale=policy)
        draining = manager.workers[1]
        draining.draining = True  # as a scale-down pass would leave it
        # worker-0's two slots fill; the third job would historically
        # queue until depth hit up_threshold or an exit fired.
        manager.submit_all(
            [_submission(f"Job-{i}", float(i), work=200.0) for i in range(3)]
        )
        sim.run(until=3.0)
        assert not draining.draining  # re-armed on the queued arrival
        assert manager.queue_len == 0
        assert len(draining.running_containers()) == 1

    def test_full_draining_worker_is_not_rearmed(self):
        """Re-arming only helps when the draining node has free slots."""
        policy = QueueDepthAutoscale(
            up_threshold=10, provision_delay=5.0, cooldown=0.0
        )
        sim, manager = _cluster(n=2, slots=1, autoscale=policy)
        manager.submit_all(
            [_submission(f"Job-{i}", float(i), work=200.0) for i in range(3)]
        )
        sim.run(until=1.5)  # both workers now hold one container each
        draining = manager.workers[1]
        draining.draining = True
        sim.run(until=3.0)
        assert draining.draining  # no free slot: nothing to re-arm
        assert manager.queue_len == 1
