"""Unit tests for the contention model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.contention import ContentionModel
from repro.errors import ConfigError


class TestEfficiency:
    def test_single_container_is_lossless(self):
        assert ContentionModel(overhead=0.05).efficiency(1) == 1.0
        assert ContentionModel(overhead=0.05).efficiency(0) == 1.0

    def test_overhead_grows_with_concurrency(self):
        model = ContentionModel(overhead=0.02)
        effs = [model.efficiency(n) for n in range(1, 6)]
        assert all(a > b for a, b in zip(effs, effs[1:]))

    def test_three_jobs_match_paper_band(self):
        # ~4 % loss with three jobs ⇒ 1–5 % makespan gap territory.
        eff = ContentionModel(overhead=0.02).efficiency(3)
        assert 0.94 < eff < 0.97

    def test_ideal_is_exact(self):
        model = ContentionModel.ideal()
        assert model.efficiency(10) == 1.0


class TestJitter:
    def test_ideal_has_no_noise(self):
        model = ContentionModel.ideal()
        noise = model.demand_noise(np.random.default_rng(0), np.ones(5))
        assert np.all(noise == 1.0)

    def test_free_competition_noisier_than_limited(self):
        model = ContentionModel(jitter_free=0.1, jitter_limited=0.01)
        rng = np.random.default_rng(0)
        limits = np.array([1.0] * 500 + [0.2] * 500)
        noise = model.demand_noise(rng, limits)
        free_spread = np.abs(noise[:500] - 1.0).mean()
        limited_spread = np.abs(noise[500:] - 1.0).mean()
        assert free_spread > 3 * limited_spread

    def test_noise_bounded_by_amplitude(self):
        model = ContentionModel(jitter_free=0.06, jitter_limited=0.015)
        noise = model.demand_noise(np.random.default_rng(1), np.ones(100))
        assert np.all(np.abs(noise - 1.0) <= 0.06 + 1e-12)

    def test_empty_input(self):
        model = ContentionModel()
        assert model.demand_noise(np.random.default_rng(0), np.ones(0)).shape == (0,)


class TestValidation:
    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigError):
            ContentionModel(overhead=-0.01)

    def test_jitter_range_checked(self):
        with pytest.raises(ConfigError):
            ContentionModel(jitter_free=1.0)
        with pytest.raises(ConfigError):
            ContentionModel(jitter_limited=-0.1)

    def test_threshold_range_checked(self):
        with pytest.raises(ConfigError):
            ContentionModel(limit_threshold=0.0)
