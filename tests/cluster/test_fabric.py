"""Unit and property tests for the control-plane message fabric.

Three layers:

* **Grammar** — ``make_fabric`` spec parsing: registry names, fault
  plans, retry/noretry suffixes, and every malformed-spec error path
  (unknown names raise :class:`~repro.errors.UnknownPolicyError`
  listing the registry, bad parameters raise
  :class:`~repro.errors.ConfigError`), plus constructor validation for
  :class:`~repro.cluster.fabric.RetryPolicy` and each fault primitive.
* **Seed purity** — the property the reliability layer leans on
  everywhere: backoff schedules, jitter draws, drop verdicts and dedup
  decisions are a pure function of ``(plan, seed)``.  Repeating a run
  reproduces the *entire* fabric transcript (every counter) and every
  completion time bit-for-bit; changing the seed moves the transcript.
* **Idempotence** — a ``duplicate(1.0)`` storm delivers every message
  at least twice, across *all eight* message kinds (place, exit,
  detach/attach migration legs, provision/retire, fail/recover), and
  changes nothing versus the clean baseline: first delivery wins,
  duplicates are suppressed against the envelope and the receiver-side
  id window.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.autoscale import QueueDepthAutoscale
from repro.cluster.contention import ContentionModel
from repro.cluster.fabric import (
    FABRICS,
    MSG_KINDS,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultyFabric,
    GrayLinkFault,
    IdealFabric,
    NETWORK_FAULTS,
    PartitionFault,
    RetryPolicy,
    make_fabric,
)
from repro.cluster.failures import ScriptedFailures, WorkerFault
from repro.cluster.manager import Manager
from repro.cluster.rebalance import MigrateOnExit
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.errors import ConfigError, UnknownPolicyError
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job


# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------


class TestSpecGrammar:
    def test_none_is_ideal(self):
        assert isinstance(make_fabric(None), IdealFabric)

    def test_ideal_by_name(self):
        assert isinstance(make_fabric("ideal"), IdealFabric)

    def test_instance_passes_through(self):
        fabric = FaultyFabric([DropFault(0.1)])
        assert make_fabric(fabric) is fabric

    def test_ideal_rejects_reliability_suffix(self):
        with pytest.raises(ConfigError, match="takes no reliability"):
            make_fabric("ideal:retry(max=3)")

    def test_faulty_by_name_has_defaults(self):
        fabric = make_fabric("faulty")
        assert isinstance(fabric, FaultyFabric)
        assert fabric.faults == []
        assert fabric.retry == RetryPolicy()

    def test_single_drop_term(self):
        fabric = make_fabric("drop(0.3)")
        assert isinstance(fabric, FaultyFabric)
        (fault,) = fabric.faults
        assert isinstance(fault, DropFault)
        assert fault.p == 0.3
        assert fabric.retry == RetryPolicy()

    def test_delay_bare_value_is_const(self):
        (fault,) = make_fabric("delay(0.5)").faults
        assert (fault.dist, fault.params) == ("const", (0.5,))

    def test_delay_explicit_const_token(self):
        # Regression: the 'const' token used to reach float() and crash.
        (fault,) = make_fabric("delay(const,0.05)").faults
        assert (fault.dist, fault.params) == ("const", (0.05,))

    def test_delay_exp_and_uniform(self):
        (exp,) = make_fabric("delay(exp,0.3)").faults
        assert (exp.dist, exp.params) == ("exp", (0.3,))
        (uni,) = make_fabric("delay(uniform,0.1,0.2)").faults
        assert (uni.dist, uni.params) == ("uniform", (0.1, 0.2))

    def test_partition_auto_dark_group(self):
        (fault,) = make_fabric("partition(10..20)").faults
        assert isinstance(fault, PartitionFault)
        assert fault.window == (10.0, 20.0)
        assert fault.workers is None

    def test_partition_explicit_workers(self):
        (fault,) = make_fabric("partition(10..20,w0|w1)").faults
        assert fault.workers == ("w0", "w1")

    def test_gray_link(self):
        (fault,) = make_fabric("gray_link(worker-3,4)").faults
        assert isinstance(fault, GrayLinkFault)
        assert (fault.worker, fault.factor) == ("worker-3", 4.0)

    def test_compound_plan_with_retry(self):
        fabric = make_fabric(
            "drop(0.1)+delay(exp,0.2)"
            ":retry(max=3,base=0.25,factor=3,cap=2,jitter=0,reconcile=10)"
        )
        assert [type(f) for f in fabric.faults] == [DropFault, DelayFault]
        assert fabric.retry == RetryPolicy(
            max_retries=3, base=0.25, factor=3.0, cap=2.0,
            jitter=0.0, reconcile=10.0,
        )

    def test_noretry_suffix(self):
        fabric = make_fabric("duplicate(0.2):noretry")
        assert fabric.retry.max_retries == 0

    def test_noretry_accepts_reconcile(self):
        fabric = make_fabric("drop(0.1):noretry(reconcile=5)")
        assert fabric.retry.max_retries == 0
        assert fabric.retry.reconcile == 5.0

    def test_noretry_rejects_other_parameters(self):
        with pytest.raises(ConfigError, match="reconcile"):
            make_fabric("drop(0.1):noretry(max=3)")

    def test_unknown_fault_lists_registry(self):
        with pytest.raises(UnknownPolicyError) as err:
            make_fabric("teleport(0.5)")
        for name in NETWORK_FAULTS:
            assert name in str(err.value)

    def test_unknown_reliability_name(self):
        with pytest.raises(UnknownPolicyError, match="noretry"):
            make_fabric("drop(0.1):often")

    def test_non_string_non_policy_rejected(self):
        with pytest.raises(UnknownPolicyError):
            make_fabric(42)

    def test_bad_retry_parameter_name(self):
        with pytest.raises(ConfigError, match="bogus"):
            make_fabric("drop(0.1):retry(bogus=1)")

    def test_bad_retry_parameter_value(self):
        with pytest.raises(ConfigError, match="needs a number"):
            make_fabric("drop(0.1):retry(max=lots)")

    def test_partition_needs_window(self):
        with pytest.raises(ConfigError, match="window"):
            make_fabric("partition(20)")

    def test_registries(self):
        assert sorted(FABRICS) == ["faulty", "ideal"]
        assert sorted(NETWORK_FAULTS) == [
            "delay", "drop", "duplicate", "gray_link", "partition",
        ]


class TestValidation:
    def test_retry_rejects_negative_max(self):
        with pytest.raises(ConfigError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0.0},
            {"factor": 0.5},
            {"base": 4.0, "cap": 2.0},
        ],
    )
    def test_retry_rejects_bad_backoff_shape(self, kwargs):
        with pytest.raises(ConfigError, match="base > 0"):
            RetryPolicy(**kwargs)

    def test_retry_rejects_negative_jitter_and_reconcile(self):
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(reconcile=-1.0)

    def test_drop_probability_range(self):
        with pytest.raises(ConfigError, match=r"\[0, 1\]"):
            DropFault(1.5)

    def test_duplicate_probability_range(self):
        with pytest.raises(ConfigError):
            DuplicateFault(-0.1)

    def test_partition_window_order(self):
        with pytest.raises(ConfigError, match="lo < hi"):
            PartitionFault((30.0, 20.0))

    def test_gray_link_factor_above_one(self):
        with pytest.raises(ConfigError, match="> 1"):
            GrayLinkFault("w0", 1.0)

    @pytest.mark.parametrize(
        "args", [("const",), ("const", -1.0), ("exp",), ("exp", 0.0),
                 ("uniform", 0.5), ("uniform", 2.0, 1.0), ("gauss", 1.0)]
    )
    def test_delay_parameter_shapes(self, args):
        with pytest.raises(ConfigError):
            DelayFault(*args)

    def test_dedup_window_positive(self):
        with pytest.raises(ConfigError, match="dedup_window"):
            FaultyFabric(dedup_window=0)


class TestDescribe:
    def test_backoff_schedule_is_capped_geometric(self):
        retry = RetryPolicy(max_retries=6, base=0.5, factor=2.0, cap=8.0)
        schedule = [retry.timeout(n) for n in range(7)]
        assert schedule == [0.5, 1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_retry_describe_round_trips_parameters(self):
        text = RetryPolicy(max_retries=3, base=0.25).describe()
        assert text.startswith("retry(max=3,base=0.25")
        assert RetryPolicy(max_retries=0).describe() == "noretry"

    def test_fault_descriptions(self):
        cases = [
            ("delay(0.5)", DelayFault("const", 0.5)),
            ("delay(exp,0.3)", DelayFault("exp", 0.3)),
            ("drop(0.3)", DropFault(0.3)),
            ("duplicate(0.2)", DuplicateFault(0.2)),
            ("partition(10..20)", PartitionFault((10, 20))),
            ("partition(10..20,w0|w1)", PartitionFault((10, 20), ("w0", "w1"))),
            ("gray_link(w3,4)", GrayLinkFault("w3", 4.0)),
        ]
        for expected, fault in cases:
            assert fault.describe() == expected

    def test_fabric_descriptions(self):
        assert IdealFabric().describe() == "ideal"
        assert FaultyFabric().describe().startswith("clean:retry(")
        fabric = make_fabric("drop(0.1)+delay(exp,0.2):noretry")
        assert fabric.describe() == "drop(0.1)+delay(exp,0.2):noretry"

    def test_ideal_fabric_delivers_inline(self):
        fabric = IdealFabric()
        hits = []
        msg = fabric.send("place", "manager", "w0", lambda: hits.append(1))
        assert hits == [1]
        assert msg.delivered and msg.attempts == 1
        assert fabric.stats() == {
            "messages_sent": 1.0, "messages_delivered": 1.0,
        }


# ---------------------------------------------------------------------------
# Property tests: seed purity and duplicate idempotence
# ---------------------------------------------------------------------------


class _RecordingFabric(FaultyFabric):
    """FaultyFabric that also remembers which message kinds it carried."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.kinds_seen: set[str] = set()

    def send(self, kind, src, dst, deliver, on_fail=None):
        self.kinds_seen.add(kind)
        return super().send(kind, src, dst, deliver, on_fail)


def _chaos_run(seed: int, fabric):
    """One small chaos run that exercises every message kind.

    Three slot-bounded workers and a burst of short jobs build a queue
    (place/exit + autoscale provision, retire once it drains), migration
    on exit sends detach/attach legs, and a scripted crash + recovery
    sends fail/recover — all through *fabric*.  Returns the resolved
    fabric, sorted completion transcript and the manager.
    """
    rng = np.random.default_rng(seed)
    sim = Simulator(seed=seed, trace=False)
    workers = [
        Worker(
            sim, name=f"w{i}", capacity=1.0,
            contention=ContentionModel.ideal(), max_containers=2,
        )
        for i in range(3)
    ]

    def factory(name):
        return Worker(
            sim, name=name, capacity=1.0,
            contention=ContentionModel.ideal(), max_containers=2,
        )

    fabric = make_fabric(fabric)
    manager = Manager(
        sim,
        workers,
        placement="spread",
        rebalance=MigrateOnExit(migration_delay=2.0),
        autoscale=QueueDepthAutoscale(
            up_threshold=3, provision_delay=5.0, cooldown=5.0,
            max_workers=5,
        ),
        failures=ScriptedFailures(
            [WorkerFault(worker="w1", time=12.0, recover_after=15.0)],
            durability="checkpoint(5)",
        ),
        fabric=fabric,
        worker_factory=factory,
    )
    finished: list[tuple[str, float]] = []

    def record(c):
        finished.append((c.name, c.finished_at))

    for worker in workers:
        worker.exit_hooks.append(record)
    manager.provision_hooks.append(lambda w: w.exit_hooks.append(record))
    manager.submit_all(
        [
            JobSubmission(
                label=f"Job-{i}",
                job=make_linear_job(
                    f"Job-{i}", float(rng.uniform(8.0, 25.0))
                ),
                submit_time=float(rng.uniform(0.0, 10.0)),
            )
            for i in range(1, 11)
        ]
    )
    sim.run()
    transcript = sorted((name, repr(t)) for name, t in finished)
    return manager.fabric, transcript, manager


_PLANS = [
    "drop(0.3):retry(max=6,base=0.2)",
    "delay(exp,0.4)+duplicate(0.5)",
    "partition(8..30,w1|w2):retry(max=8,base=0.5)",
    "gray_link(w0,3.0)",
]


class TestSeedPurity:
    @pytest.mark.parametrize("plan", _PLANS)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_same_seed_same_transcript(self, plan, seed):
        # Backoff timing, jitter draws, drop verdicts and dedup
        # decisions are a pure function of (plan, seed): the whole
        # fabric transcript and every completion time reproduce.
        first = _chaos_run(seed, plan)
        second = _chaos_run(seed, plan)
        assert first[0].stats() == second[0].stats()
        assert first[1] == second[1]
        assert sorted(first[2].failed) == sorted(second[2].failed)

    def test_different_seed_moves_the_transcript(self):
        plan = "drop(0.3)+delay(exp,0.4):retry(max=6,base=0.2)"
        stats_a = _chaos_run(3, plan)[0].stats()
        stats_b = _chaos_run(4, plan)[0].stats()
        # Different workloads and different fault draws: the loss-level
        # counters cannot coincide across these particular seeds.
        assert stats_a != stats_b

    def test_jitter_schedule_reproduces_across_instances(self):
        # Two fabrics bound to same-seed simulators draw identical
        # jitter sequences from the dedicated "fabric" stream.
        draws = []
        for _ in range(2):
            sim = Simulator(seed=11, trace=False)
            fabric = FaultyFabric([DropFault(1.0)])
            fabric.sim = sim
            fabric.rng = sim.rngs.stream("fabric")
            draws.append([float(fabric.rng.random()) for _ in range(16)])
        assert draws[0] == draws[1]


class TestDuplicateIdempotence:
    def test_duplicate_storm_is_invisible_for_every_message_kind(self):
        # duplicate(1.0) schedules every delivery twice; latency stays
        # zero so ordering is otherwise identical to the clean baseline.
        baseline = _chaos_run(5, "delay(const,0.0)")
        stormy = _chaos_run(
            5, "delay(const,0.0)+duplicate(1.0):retry(max=6,base=0.5)"
        )
        fabric = stormy[0]
        assert isinstance(fabric, FaultyFabric)
        assert fabric.duplicates_suppressed > 0
        assert stormy[1] == baseline[1]
        assert sorted(stormy[2].failed) == sorted(baseline[2].failed)

    def test_storm_covers_all_message_kinds(self):
        # The chaos shape must actually exercise the full protocol —
        # otherwise the idempotence claim above is vacuous for the
        # kinds it never sent.
        fabric = _RecordingFabric(
            [DelayFault("const", 0.0), DuplicateFault(1.0)]
        )
        seen, _, _ = _chaos_run(5, fabric)
        assert seen is fabric
        assert fabric.kinds_seen == set(MSG_KINDS)

    def test_redelivery_after_success_is_suppressed(self):
        # Direct unit check: a second arrival of a delivered envelope
        # must not re-run the receiver effect.
        sim = Simulator(seed=0, trace=False)
        fabric = FaultyFabric([DuplicateFault(1.0)])
        fabric.sim = sim
        fabric.rng = sim.rngs.stream("fabric")
        hits = []
        fabric.send("exit", "w0", "manager", lambda: hits.append(1))
        sim.run()
        assert hits == [1]
        assert fabric.messages_delivered == 1
        assert fabric.duplicates_suppressed == 1
