"""Unit tests for the fused fleet-tick engine.

The contracts under test, each against the serial path as the oracle:

* **Engine batching** — a registered batcher only ever receives genuine
  same-instant batches (size ≥ 2, same ``(time, kind, priority)``, pop
  order); lone events of a batched kind fire directly, and
  ``events_processed`` counts every batched event.
* **Phase parity** — :func:`fleet_settle` / :func:`fleet_reallocate` /
  the segmented allocator reproduce ``settle()`` / ``poke()`` /
  per-worker ``allocate()`` bit for bit, including the scalar fallbacks
  for dynamic footprints and the validation errors of the serial path.
* **Ticker lifecycle** — recorders discovered from event payloads,
  foreign and stopped-recorder events fire normally, caches invalidate
  on pool changes, and the fused prune keeps history bounded on the
  serial cadence.
"""

from __future__ import annotations

import pytest

import numpy as np

from repro.cluster.contention import ContentionModel
from repro.cluster.fleet import (
    FleetTicker,
    fleet_reallocate,
    fleet_sample,
    fleet_settle,
)
from repro.cluster.worker import Worker
from repro.containers.allocator import AllocationMode, CpuAllocator
from repro.containers.spec import ResourceSpec
from repro.errors import AllocationError
from repro.metrics.recorder import MetricsRecorder
from repro.simcore.engine import Simulator
from repro.simcore.events import PRIORITY_SAMPLE, EventKind
from repro.workloads.curves import PiecewiseLinearCurve
from repro.workloads.evalfn import EvalFunction, EvalKind
from repro.workloads.job import TrainingJob
from tests.conftest import make_linear_job


class _DynamicSpec(ResourceSpec):
    """A non-plain footprint: forces the scalar settle/finish fallbacks."""


def _build_fleet(
    seed: int,
    jobs_per_worker: tuple[int, ...] = (2, 1, 3),
    contention=None,
    total_work: float = 300.0,
    dynamic: frozenset[int] = frozenset(),
):
    """A small fleet with a deterministic mix of pool sizes."""
    sim = Simulator(seed=seed, trace=False)
    workers = []
    for i, n_jobs in enumerate(jobs_per_worker):
        w = Worker(
            sim,
            name=f"w{i}",
            contention=contention() if contention is not None else None,
            max_containers=4,
        )
        for k in range(n_jobs):
            demand = 0.5 + 0.1 * ((i + k) % 5)
            if i in dynamic:
                job = TrainingJob(
                    name=f"w{i}-j{k}",
                    total_work=total_work,
                    curve=PiecewiseLinearCurve([(0.0, 1.0), (1.0, 0.0)]),
                    evalfn=EvalFunction(
                        kind=EvalKind.SQUARED_LOSS, start=1.0, converged=0.0
                    ),
                    footprint=_DynamicSpec(cpu_demand=demand, memory=0.1),
                    total_iterations=1000,
                )
            else:
                job = make_linear_job(
                    f"w{i}-j{k}", total_work=total_work, demand=demand
                )
            w.launch(job)
        workers.append(w)
    return sim, workers


def _settle_state(workers):
    return [
        (
            c.name,
            repr(c.job.work_done),
            c.cgroup._integral.tolist(),
            repr(c.cgroup.last_update),
        )
        for w in workers
        for c in w.running_containers()
    ]


def _alloc_state(workers):
    return [
        (
            w.name,
            w.version,
            [repr(c.current_alloc) for c in w._active],
            {
                c.name: repr(w._exit_handles[c.cid].event.time)
                for c in w._active
                if c.cid in w._exit_handles and w._exit_handles[c.cid].alive
            },
        )
        for w in workers
    ]


class TestEngineBatching:
    def _sim(self):
        sim = Simulator(seed=0, trace=False)
        fired: list = []
        batches: list = []

        def batcher(batch):
            batches.append([ev.payload for ev in batch])
            for ev in batch:
                ev.fire()

        sim.register_batcher(EventKind.GENERIC, batcher)
        return sim, fired, batches

    def test_lone_event_fires_directly(self):
        sim, fired, batches = self._sim()
        sim.schedule(
            1.0, lambda ev: fired.append(ev.payload), kind=EventKind.GENERIC,
            payload="solo",
        )
        sim.run_until_empty()
        assert fired == ["solo"]
        assert batches == []  # never saw a size-1 batch
        assert sim.events_processed == 1

    def test_same_instant_events_batch_in_pop_order(self):
        sim, fired, batches = self._sim()
        for i in range(3):
            sim.schedule(
                2.0, lambda ev: fired.append(ev.payload),
                kind=EventKind.GENERIC, payload=i,
            )
        sim.run_until_empty()
        assert batches == [[0, 1, 2]]  # one batch, FIFO within the instant
        assert fired == [0, 1, 2]  # the batcher fired each event itself
        assert sim.events_processed == 3

    def test_priority_mismatch_breaks_the_batch(self):
        sim, fired, batches = self._sim()
        for i in range(2):
            sim.schedule(
                3.0, lambda ev: fired.append(ev.payload),
                kind=EventKind.GENERIC, payload=f"p0-{i}",
            )
        sim.schedule(
            3.0, lambda ev: fired.append(ev.payload),
            kind=EventKind.GENERIC, priority=1, payload="p1",
        )
        sim.run_until_empty()
        assert batches == [["p0-0", "p0-1"]]
        assert fired == ["p0-0", "p0-1", "p1"]  # lone p1 fired directly

    def test_other_kinds_pass_through_untouched(self):
        sim, fired, batches = self._sim()
        for i in range(2):
            sim.schedule(
                4.0, lambda ev: fired.append(ev.payload),
                kind=EventKind.METRIC_SAMPLE, payload=i,
            )
        sim.run_until_empty()
        assert batches == []
        assert fired == [0, 1]

    def test_unregister_restores_serial_dispatch(self):
        sim, fired, batches = self._sim()
        sim.unregister_batcher(EventKind.GENERIC)
        for i in range(2):
            sim.schedule(
                5.0, lambda ev: fired.append(ev.payload),
                kind=EventKind.GENERIC, payload=i,
            )
        sim.run_until_empty()
        assert batches == []
        assert fired == [0, 1]


class TestFleetSettleParity:
    @pytest.mark.parametrize("contention", [ContentionModel.ideal, None])
    def test_matches_per_worker_settle_bitwise(self, contention):
        serial_sim, serial_workers = _build_fleet(3, contention=contention)
        fused_sim, fused_workers = _build_fleet(3, contention=contention)
        for t in (2.5, 7.0, 7.0):  # repeat: second settle at 7.0 is a no-op
            serial_sim.clock.advance_to(t)
            fused_sim.clock.advance_to(t)
            for w in serial_workers:
                w.settle()
            fleet_settle(fused_workers)
        assert _settle_state(serial_workers) == _settle_state(fused_workers)

    def test_dynamic_footprints_take_scalar_fallback_identically(self):
        serial_sim, serial_workers = _build_fleet(5, dynamic=frozenset({1}))
        fused_sim, fused_workers = _build_fleet(5, dynamic=frozenset({1}))
        serial_sim.clock.advance_to(4.0)
        fused_sim.clock.advance_to(4.0)
        for w in serial_workers:
            w.settle()
        fleet_settle(fused_workers)
        assert _settle_state(serial_workers) == _settle_state(fused_workers)

    def test_empty_worker_just_advances_its_clock(self):
        sim, workers = _build_fleet(0, jobs_per_worker=(2, 0, 1))
        sim.clock.advance_to(3.0)
        fleet_settle(workers)
        assert all(w._last_settle == 3.0 for w in workers)


class TestFleetReallocateParity:
    @pytest.mark.parametrize("contention", [ContentionModel.ideal, None])
    def test_matches_per_worker_poke_bitwise(self, contention):
        """Same allocations, versions, exit times and RNG draw order."""
        serial_sim, serial_workers = _build_fleet(9, contention=contention)
        fused_sim, fused_workers = _build_fleet(9, contention=contention)
        for t in (3.0, 8.5):
            serial_sim.clock.advance_to(t)
            fused_sim.clock.advance_to(t)
            for w in serial_workers:
                w.poke()
            fleet_settle(fused_workers)
            fleet_reallocate(fused_workers)
        assert _alloc_state(serial_workers) == _alloc_state(fused_workers)
        assert _settle_state(serial_workers) == _settle_state(fused_workers)

    def test_dynamic_memory_takes_serial_finish_identically(self):
        """mem=None workers run ``_realloc_finish`` in place, same bits."""
        serial_sim, serial_workers = _build_fleet(2, dynamic=frozenset({0}))
        fused_sim, fused_workers = _build_fleet(2, dynamic=frozenset({0}))
        serial_sim.clock.advance_to(5.0)
        fused_sim.clock.advance_to(5.0)
        for w in serial_workers:
            w.poke()
        fleet_settle(fused_workers)
        fleet_reallocate(fused_workers)
        assert _alloc_state(serial_workers) == _alloc_state(fused_workers)

    def test_already_poked_worker_is_skipped(self):
        sim, workers = _build_fleet(4)
        sim.clock.advance_to(2.0)
        workers[0].poke()
        version = workers[0].version
        fleet_reallocate(workers)
        assert workers[0].version == version  # poke coalescing preserved
        assert all(w.version > 0 for w in workers[1:])

    def test_empty_pool_completes_reallocation(self):
        sim, workers = _build_fleet(6, jobs_per_worker=(0, 2))
        sim.clock.advance_to(2.0)
        fleet_reallocate(workers)
        assert workers[0]._allocs.shape == (0,)
        assert workers[0]._last_poke == (2.0, workers[0].version)


class TestAllocateSegmented:
    def _random_segments(self, rng, sizes):
        caps = [float(c) for c in rng.uniform(0.5, 2.0, len(sizes))]
        lims = [rng.uniform(0.05, 1.0, n) for n in sizes]
        dems = [rng.uniform(0.0, 1.2, n) for n in sizes]
        wts = [
            rng.uniform(0.5, 2.0, n) if rng.random() < 0.5 else None
            for n in sizes
        ]
        return caps, lims, dems, wts

    @pytest.mark.parametrize("mode", [AllocationMode.SOFT, AllocationMode.HARD])
    def test_parity_with_per_worker_allocate(self, mode):
        rng = np.random.default_rng(12)
        allocator = CpuAllocator(mode)
        for trial in range(8):
            sizes = [int(n) for n in rng.integers(1, 7, rng.integers(1, 6))]
            if trial == 0:
                sizes.append(70)  # beyond the scalar bound: delegates
            if trial == 1:
                sizes.append(0)  # empty segment
            caps, lims, dems, wts = self._random_segments(rng, sizes)
            got = allocator.allocate_segmented(caps, lims, dems, wts)
            for c, li, d, w, alloc in zip(caps, lims, dems, wts, got):
                want = allocator.allocate(c, li, d, w)
                assert alloc.tolist() == want.tolist()

    def test_all_singleton_segments_broadcast_identically(self):
        """The n==1 broadcast pipeline vs the per-segment scalar path."""
        rng = np.random.default_rng(3)
        allocator = CpuAllocator(AllocationMode.SOFT)
        sizes = [1] * 40
        caps, lims, dems, wts = self._random_segments(rng, sizes)
        got = allocator.allocate_segmented(caps, lims, dems, wts)
        for c, li, d, w, alloc in zip(caps, lims, dems, wts, got):
            assert alloc.tolist() == allocator.allocate(c, li, d, w).tolist()

    def test_invalid_limits_raise_like_the_serial_path(self):
        allocator = CpuAllocator(AllocationMode.SOFT)
        good = np.array([0.5, 0.5])
        bad = np.array([0.0, 0.5])  # zero limit: invalid
        with pytest.raises(AllocationError):
            allocator.allocate(1.0, bad, good)
        with pytest.raises(AllocationError):
            allocator.allocate_segmented(
                [1.0, 1.0], [good, bad], [good, good], [None, None]
            )

    def test_invalid_singleton_weights_raise_like_the_serial_path(self):
        allocator = CpuAllocator(AllocationMode.SOFT)
        one = np.array([0.8])
        with pytest.raises(AllocationError):
            allocator.allocate(1.0, one, one, np.array([-1.0]))
        with pytest.raises(AllocationError):
            allocator.allocate_segmented(
                [1.0, 1.0], [one, one], [one, one],
                [np.array([1.0]), np.array([-1.0])],
            )


def _ticked_fleet(
    n_workers: int,
    fleet: bool = True,
    sample_interval: float = 5.0,
    total_work: float = 10_000.0,
):
    sim = Simulator(seed=0, trace=False)
    workers = [
        Worker(
            sim,
            name=f"w{i}",
            contention=ContentionModel.ideal(),
            max_containers=4,
        )
        for i in range(n_workers)
    ]
    for i, w in enumerate(workers):
        w.launch(make_linear_job(f"w{i}-j", total_work=total_work, demand=0.8))
    recorders = [
        MetricsRecorder(w, sample_interval=sample_interval) for w in workers
    ]
    for r in recorders:
        r.start()
    ticker = FleetTicker(sim)
    if fleet:
        ticker.arm()
    return sim, workers, recorders, ticker


class TestFleetTicker:
    def test_counters_track_fused_work(self):
        sim, workers, recorders, ticker = _ticked_fleet(3)
        sim.run(until=30.0)  # ticks at 5, 10, ..., 30
        assert ticker.fused_batches == 6
        assert ticker.batched_events == 18  # every tick batches 3 events
        assert ticker.fused_samples == 18  # one container per worker
        for r in recorders:
            r.stop()

    def test_single_worker_never_reaches_the_batcher(self):
        sim, workers, recorders, ticker = _ticked_fleet(1)
        sim.run(until=30.0)
        assert ticker.batched_events == 0  # lone ticks fire directly
        assert ticker.fused_batches == 0
        [r] = recorders
        assert len(r.traces) == 1  # serial sampling still ran
        for trace in r.traces.values():
            assert len(trace.cpu_usage) == 6
        r.stop()

    def test_foreign_payload_fires_normally(self):
        sim, workers, recorders, ticker = _ticked_fleet(2)
        fired = []
        sim.schedule(
            5.0,
            lambda ev: fired.append(ev.payload),
            kind=EventKind.METRIC_SAMPLE,
            priority=PRIORITY_SAMPLE,
            payload="foreign",
        )
        sim.run(until=10.0)
        assert fired == ["foreign"]
        assert ticker.fused_batches == 2  # both ticks still fused
        for r in recorders:
            r.stop()

    def test_stopped_recorder_drops_out_of_the_fused_pass(self):
        sim, workers, recorders, ticker = _ticked_fleet(3)
        sim.run(until=10.0)
        recorders[0].stop()
        before = len(recorders[0].traces[next(iter(recorders[0].traces))].cpu_usage)
        sim.run(until=20.0)
        assert ticker.fused_batches == 4  # the other two keep fusing
        [trace] = recorders[0].traces.values()
        assert len(trace.cpu_usage) == before  # no samples after stop
        for trace in recorders[1].traces.values():
            assert len(trace.cpu_usage) == 4
        for r in recorders[1:]:
            r.stop()

    def test_static_cache_rebuilds_on_pool_change(self):
        """A mid-run launch invalidates the version-keyed static entries."""
        sim, workers, recorders, ticker = _ticked_fleet(2)
        sim.run(until=12.0)
        late = workers[0].launch(
            make_linear_job("late", total_work=10_000.0, demand=0.5)
        )
        sim.run(until=22.0)
        trace = recorders[0].traces[late.cid]  # fused pass created it
        times = trace.cpu_usage.arrays()[0].tolist()
        assert times == [15.0, 20.0]  # sampled from the attach instant on
        for r in recorders:
            r.stop()

    def test_fused_sampling_matches_serial_bitwise(self):
        serial = _ticked_fleet(3, fleet=False)
        fused = _ticked_fleet(3, fleet=True)
        for sim, *_ in (serial, fused):
            sim.run(until=200.0)

        def series(run):
            _, _, recorders, _ = run
            out = {}
            for r in recorders:
                for trace in r.traces.values():
                    for name in ("cpu_usage", "cpu_limit", "eval_value", "growth"):
                        times, values = getattr(trace, name).arrays()
                        out[f"{r.worker.name}:{trace.label}:{name}"] = (
                            times.tobytes(),
                            values.tobytes(),
                        )
            return out

        assert series(serial) == series(fused)
        assert serial[0].events_processed == fused[0].events_processed
        for run in (serial, fused):
            for r in run[2]:
                r.stop()

    def test_fused_prune_keeps_history_bounded_on_serial_cadence(self):
        """The fused pass carries the bus's memory bound, same floors."""
        serial = _ticked_fleet(2, fleet=False, sample_interval=2.0)
        fused = _ticked_fleet(2, fleet=True, sample_interval=2.0)
        for sim, *_ in (serial, fused):
            sim.run(until=500.0)

        def floors(run):
            _, workers, _, _ = run
            return [
                (
                    w.name,
                    c.name,
                    repr(c.cgroup.history_floor),
                    c.cgroup.checkpoint_count,
                    w.obsbus.passes,
                )
                for w in workers
                for c in w.running_containers()
            ]

        assert floors(serial) == floors(fused)
        for _, workers, _, _ in (fused,):
            for w in workers:
                for c in w.running_containers():
                    assert c.cgroup.history_floor > c.created_at  # pruned
                    assert c.cgroup.checkpoint_count <= 64  # bounded
        for run in (serial, fused):
            for r in run[2]:
                r.stop()

    def test_fleet_sample_without_static_cache(self):
        """``static_cache=None`` (ad-hoc callers) builds entries in place."""
        sim, workers, recorders, ticker = _ticked_fleet(2, fleet=False)
        sim.run(until=5.0)  # serial tick at 5.0 seeds the sampler windows
        sim.clock.advance_to(8.0)
        fleet_settle(workers)
        fleet_reallocate(workers)
        n = fleet_sample(recorders, {})
        assert n == 2  # one window mean per (recorder, container)
        for r in recorders:
            for trace in r.traces.values():
                assert trace.cpu_usage.arrays()[0].tolist() == [5.0, 8.0]
            r.stop()
