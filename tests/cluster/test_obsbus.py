"""Tests for the per-worker observation bus.

The contracts under test:

* **Zero redundancy** — a sampling tick with several subscribers costs
  exactly one settle and one uncached cgroup window query per container.
* **Bit parity** — a :class:`BusSampler` reproduces the historical
  private-:class:`StatsSampler` readings bit-for-bit, window for window.
* **Bounded memory** — checkpoint pruning keeps per-container history
  bounded by the longest live observation window without changing any
  reading, is disabled whenever migration is possible, and turns
  out-of-floor queries into loud errors.
* **Poke coalescing** — stacked same-instant samplers re-balance once.
"""

from __future__ import annotations

import pytest

from repro.baselines.na import NAPolicy
from repro.cluster.contention import ContentionModel
from repro.cluster.manager import Manager
from repro.cluster.obsbus import BusSampler
from repro.cluster.worker import Worker
from repro.config import SimulationConfig
from repro.containers.stats import StatsSampler
from repro.errors import ContainerError
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import two_hundred_job
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job


def _stats_fields(stats):
    return (
        stats.time,
        stats.cid,
        stats.name,
        stats.state,
        stats.mean_usage,
        stats.cpu_alloc,
        stats.cpu_limit,
        stats.eval_value,
    )


class TestZeroRedundancy:
    def test_three_subscribers_one_settle_one_window_query(self, sim):
        """A tick with 3 subscribers: 1 settle + 1 window query per container."""
        worker = Worker(sim)  # default (jittered) contention
        containers = [
            worker.launch(make_linear_job(f"j{i}", total_work=500.0))
            for i in range(3)
        ]
        subscribers = [worker.obsbus.sampler() for _ in range(3)]
        worker.obsbus.prune = False  # keep query accounting untruncated

        def tick(now: float):
            sim.clock.advance_to(now)
            worker.poke()
            # Each subscriber observes independently, as the recorder,
            # FlowCon monitor and progress observer would.
            for sub in subscribers:
                for obs in worker.obsbus.observe():
                    sub.sample(obs)

        tick(5.0)  # warm-up: seeds each account's snapshot memo
        for c in containers:
            c.cgroup.window_queries = 0
        checkpoints = {
            c.cid: c.cgroup.checkpoint_count for c in containers
        }
        passes = worker.obsbus.passes

        for step in range(2, 6):
            tick(5.0 * step)

        for c in containers:
            # One settle per tick ⇒ exactly one new checkpoint per tick.
            assert c.cgroup.checkpoint_count - checkpoints[c.cid] == 4
            # One uncached integral snapshot per tick, shared by all
            # three subscribers' windows.
            assert c.cgroup.window_queries == 4
        assert worker.obsbus.passes - passes == 4

    def test_same_instant_observe_hits_cache(self, sim):
        worker = Worker(sim)
        worker.launch(make_linear_job(total_work=100.0))
        sim.clock.advance_to(3.0)
        first = worker.obsbus.observe()
        assert worker.obsbus.observe() is first  # no state change: cached

    def test_eval_computed_once_per_instant(self, sim):
        """E(t) survives a same-instant reallocation without re-evaluation."""
        worker = Worker(sim)
        container = worker.launch(make_linear_job(total_work=100.0))
        sim.clock.advance_to(4.0)
        calls = 0
        orig = container.job.eval_value

        def counting():
            nonlocal calls
            calls += 1
            return orig()

        container.job.eval_value = counting
        worker.obsbus.observe()
        assert calls == 1
        worker.poke()  # same instant, new state version
        worker.obsbus.observe()
        assert calls == 1  # reused from the same-instant pass


class TestBusSamplerParity:
    def test_matches_private_stats_sampler_bitwise(self, sim):
        """Bus readings equal the historical private-sampler readings."""
        worker = Worker(sim)  # jittered: realistic windows
        worker.obsbus.prune = False  # private sampler needs full history
        for i in range(3):
            worker.launch(make_linear_job(f"j{i}", total_work=400.0))
        bus_sampler = BusSampler()
        private = StatsSampler()
        for step in range(1, 8):
            now = 3.5 * step
            sim.clock.advance_to(now)
            worker.poke()
            for obs in worker.obsbus.observe():
                got = bus_sampler.sample(obs)
                want = private.sample(obs.container, now)
                if want is None:
                    assert got is None
                    continue
                assert _stats_fields(got) == _stats_fields(want)

    def test_zero_length_window_returns_none(self, sim):
        worker = Worker(sim)
        worker.launch(make_linear_job(total_work=50.0))
        sampler = worker.obsbus.sampler()
        sim.clock.advance_to(2.0)
        [obs] = worker.obsbus.observe()
        assert sampler.sample(obs) is not None
        assert sampler.sample(obs) is None  # duplicate poll, same instant

    def test_forget_reopens_window_from_creation(self, sim):
        worker = Worker(sim)
        c = worker.launch(make_linear_job(total_work=50.0))
        sampler = worker.obsbus.sampler()
        worker.obsbus.prune = False
        sim.clock.advance_to(2.0)
        [obs] = worker.obsbus.observe()
        sampler.sample(obs)
        sampler.forget(c.cid)
        assert sampler.window_start(c.cid, c.created_at) == c.created_at


class TestPruning:
    def _drive(self, prune: bool, ticks: int = 120):
        sim = Simulator(seed=11, trace=False)
        worker = Worker(sim)
        worker.obsbus.prune = prune
        c = worker.launch(make_linear_job(total_work=10_000.0))
        sampler = worker.obsbus.sampler()
        means = []
        for step in range(1, ticks + 1):
            sim.clock.advance_to(2.0 * step)
            worker.poke()
            [obs] = worker.obsbus.observe()
            stats = sampler.sample(obs)
            means.append(stats.mean_usage)
        return c, means

    def test_bounded_history_and_identical_readings(self):
        pruned, means_pruned = self._drive(prune=True)
        full, means_full = self._drive(prune=False)
        assert full.cgroup.checkpoint_count > 100  # grows with run length
        assert pruned.cgroup.checkpoint_count <= 32  # bounded by window
        assert means_pruned == means_full  # pruning never changes a reading

    def test_query_below_pruned_floor_raises(self):
        c, _ = self._drive(prune=True)
        with pytest.raises(ContainerError):
            c.cgroup.mean_usage_since(0.0, 1.0)

    def test_runtime_stats_survives_pruning(self):
        """Regression: the ``docker stats`` facade on a pruned account.

        A fresh (unregistered) observer's first window clamps to the
        pruned history floor instead of crashing on the creation-time
        query the floor has outrun.
        """
        sim = Simulator(seed=5, trace=False)
        worker = Worker(sim)
        c = worker.launch(make_linear_job(total_work=10_000.0))
        sampler = worker.obsbus.sampler()
        for step in range(1, 60):
            sim.clock.advance_to(2.0 * step)
            worker.poke()
            [obs] = worker.obsbus.observe()
            sampler.sample(obs)
        assert c.cgroup.history_floor > c.created_at  # pruning happened
        stats = worker.runtime.stats(c.cid)  # must not raise
        assert stats is not None
        assert stats.mean_usage.cpu >= 0.0
        # Late bus subscribers clamp the same way.
        late = worker.obsbus.sampler()
        [obs] = worker.obsbus.observe()
        assert late.sample(obs) is not None

    def test_unpruned_account_still_clamps_early_queries(self, sim):
        worker = Worker(sim)
        c = worker.launch(make_linear_job(total_work=50.0))
        sim.clock.advance_to(5.0)
        worker.poke()
        # Historical behaviour: windows reaching before creation clamp.
        mean = c.cgroup.mean_usage_since(-10.0, 5.0)
        assert mean.cpu >= 0.0

    def test_idle_subscriber_freezes_pruning_conservatively(self):
        """A subscriber that stops sampling pins the floor at its windows.

        The conservative contract: history a registered observer could
        still legitimately window over (its next window starts at its
        last sample; an unseen container's first window starts at
        creation) is never pruned — an idle observer therefore degrades
        to the historical keep-everything behaviour rather than ever
        clamping another observer's first full-from-creation window.
        """
        sim = Simulator(seed=2, trace=False)
        worker = Worker(sim)
        active = worker.obsbus.sampler()  # recorder-like, samples always
        idle = worker.obsbus.sampler()    # never samples at all
        c = worker.launch(make_linear_job(total_work=10_000.0))
        for step in range(1, 80):
            sim.clock.advance_to(2.0 * step)
            worker.poke()
            for obs in worker.obsbus.observe():
                active.sample(obs)
        assert c.cgroup.history_floor == c.created_at  # pinned, unpruned
        # The idle observer's first window still spans from creation.
        [obs] = worker.obsbus.observe()
        stats = idle.sample(obs)
        assert stats is not None
        assert stats.mean_usage.cpu > 0.0

    def test_manager_keeps_pruning_enabled_for_rebalance_runs(self):
        """Migration-armed fleets prune too (windows seed at attach)."""
        sim = Simulator(seed=0, trace=False)
        workers = [Worker(sim, name=f"w{i}", max_containers=4) for i in range(2)]
        Manager(sim, workers, rebalance="migrate")
        assert all(w.obsbus.prune for w in workers)

        sim2 = Simulator(seed=0, trace=False)
        workers2 = [Worker(sim2, name=f"w{i}", max_containers=4) for i in range(2)]
        Manager(sim2, workers2, rebalance="none")
        assert all(w.obsbus.prune for w in workers2)

    def test_attach_seeds_windows_at_migration_instant(self):
        """A migrated container's new observers never reach below attach.

        The target worker's recorder-like subscriber had never seen the
        container; its first window must start at the attach instant —
        not at the container's creation on the old node — so the target
        bus can keep pruning.
        """
        sim = Simulator(seed=3, trace=False)
        src = Worker(sim, name="src")
        dst = Worker(sim, name="dst")
        dst_sampler = dst.obsbus.sampler()
        c = src.launch(make_linear_job(total_work=10_000.0))
        sim.clock.advance_to(40.0)
        dst.attach(src.detach(c.cid))
        assert dst_sampler.window_start(c.cid, c.created_at) == 40.0
        sim.clock.advance_to(42.0)
        dst.poke()
        [obs] = dst.obsbus.observe()
        stats = dst_sampler.sample(obs)
        assert stats is not None and stats.mean_usage.cpu > 0.0

    def test_migrating_run_keeps_history_bounded(self):
        """Bounded-memory regression with rebalancing armed.

        Pruning used to be disabled fleet-wide whenever a rebalance
        policy might migrate containers, so long runs grew cgroup
        history without bound; attach-instant window seeding lets the
        bus prune through migrations.
        """
        result = run_cluster(
            two_hundred_job(seed=0),
            NAPolicy,
            SimulationConfig(seed=0, trace=False),
            n_workers=8,
            max_containers=4,
            rebalance="migrate",
        )
        counts = [
            c.cgroup.checkpoint_count
            for w in result.workers
            for c in w.runtime.all_containers()
        ]
        assert len(counts) == 200
        assert max(counts) <= 64  # bounded, vs hundreds unpruned

    def test_two_hundred_job_checkpoints_stay_bounded(self):
        """The Poisson stream must not grow cgroup history with run length."""
        result = run_cluster(
            two_hundred_job(seed=0),
            NAPolicy,
            SimulationConfig(seed=0, trace=False),
            n_workers=8,
            max_containers=4,
        )
        counts = [
            c.cgroup.checkpoint_count
            for w in result.workers
            for c in w.runtime.all_containers()
        ]
        assert len(counts) == 200
        assert max(counts) <= 64  # bounded, vs hundreds unpruned


class TestPokeCoalescing:
    def test_second_same_instant_poke_is_noop(self, sim):
        worker = Worker(sim)  # jittered: a real re-balance would redraw
        worker.launch(make_linear_job(total_work=100.0))
        sim.clock.advance_to(1.0)
        worker.poke()
        version = worker.version
        worker.poke()
        assert worker.version == version  # coalesced

    def test_state_change_defeats_coalescing(self, sim):
        worker = Worker(sim)
        worker.launch(make_linear_job("a", total_work=100.0))
        sim.clock.advance_to(1.0)
        worker.poke()
        worker.launch(make_linear_job("b", total_work=100.0))
        version = worker.version
        worker.poke()
        assert worker.version > version  # pool changed: re-balance runs

    def test_later_poke_rebalances(self, sim):
        worker = Worker(sim)
        worker.launch(make_linear_job(total_work=100.0))
        sim.clock.advance_to(1.0)
        worker.poke()
        version = worker.version
        sim.clock.advance_to(2.0)
        worker.poke()
        assert worker.version > version


class TestIdleObserverPruning:
    """Quiescent progress observers release their prune-floor pin.

    Historically a registered-but-idle subscriber (the ``progress``
    placement observer after the last arrival) froze every container's
    prune floor at its last sampling windows for the rest of the run.
    The manager now quiesces the placement policy when nothing is left
    to place, the observer unregisters, and the floor advances again.
    """

    def _cluster_run(self, placement):
        from repro.cluster.manager import Manager
        from repro.cluster.submission import JobSubmission
        from repro.metrics.recorder import MetricsRecorder

        sim = Simulator(seed=0, trace=False)
        workers = [
            Worker(
                sim,
                name=f"w{i}",
                contention=ContentionModel.ideal(),
                max_containers=4,
            )
            for i in range(2)
        ]
        manager = Manager(sim, workers, placement=placement)
        recorders = [
            MetricsRecorder(w, sample_interval=5.0) for w in workers
        ]
        for r in recorders:
            r.start()
        # One long job per worker plus early arrivals that finish fast:
        # after t≈40 the placement observer never samples again.
        manager.submit_all(
            [
                JobSubmission(
                    label=f"long-{i}",
                    job=make_linear_job(f"long-{i}", 500.0),
                    submit_time=0.0,
                )
                for i in range(2)
            ]
            + [
                JobSubmission(
                    label=f"quick-{i}",
                    job=make_linear_job(f"quick-{i}", 10.0),
                    submit_time=10.0 + i,
                )
                for i in range(4)
            ]
        )
        sim.run(until=600.0)
        for r in recorders:
            r.stop()
        return manager, workers

    def test_progress_observer_unregisters_when_quiescent(self):
        manager, workers = self._cluster_run("progress")
        observer = manager.placement._observer
        assert manager.pending == 0
        for worker in workers:
            assert observer._sampler not in worker.obsbus._samplers

    def test_prune_floor_advances_after_quiesce(self):
        """The long containers' floors track the recorder's window, not
        the quiescent placement observer's last arrival-time sample."""
        manager, workers = self._cluster_run("progress")
        spread_manager, spread_workers = self._cluster_run("spread")
        for w_prog, w_spread in zip(workers, spread_workers):
            for c_p, c_s in zip(
                w_prog.running_containers(), w_spread.running_containers()
            ):
                # Progress placement's idle observer no longer pins the
                # floor: same bounded history as the spread-placed run.
                assert c_p.cgroup.history_floor > c_p.created_at
                assert c_p.cgroup.checkpoint_count <= (
                    c_s.cgroup.checkpoint_count + 2
                )

    def test_reobservation_after_release_still_works(self):
        """release() is not a tombstone: a new arrival re-subscribes."""
        from repro.cluster.manager import Manager
        from repro.cluster.submission import JobSubmission

        sim = Simulator(seed=0, trace=False)
        workers = [
            Worker(
                sim,
                name=f"w{i}",
                contention=ContentionModel.ideal(),
                max_containers=4,
            )
            for i in range(2)
        ]
        manager = Manager(sim, workers, placement="progress")
        manager.submit_all(
            [
                JobSubmission(
                    label="first",
                    job=make_linear_job("first", 80.0),
                    submit_time=0.0,
                ),
                JobSubmission(
                    label="late",
                    job=make_linear_job("late", 30.0),
                    submit_time=40.0,
                ),
            ]
        )
        sim.run(until=20.0)
        observer = manager.placement._observer
        assert manager.pending == 1  # "late" still due: not quiescent yet
        sim.run_until_empty()
        assert len(manager.placements) == 2
        assert manager.pending == 0
        for worker in workers:
            assert observer._sampler not in worker.obsbus._samplers

    def test_resubmission_after_prune_advance_does_not_crash(self):
        """Regression: a released observer's windows must not survive.

        After quiesce the prune floor advances past the observer's last
        samples; a *new* submission re-subscribes the observer, and its
        first sample must window from the pruned floor instead of
        querying below it (which raises).
        """
        from repro.cluster.manager import Manager
        from repro.cluster.submission import JobSubmission
        from repro.metrics.recorder import MetricsRecorder

        sim = Simulator(seed=0, trace=False)
        workers = [
            Worker(
                sim,
                name=f"w{i}",
                contention=ContentionModel.ideal(),
                max_containers=4,
            )
            for i in range(2)
        ]
        manager = Manager(sim, workers, placement="progress")
        recorders = [MetricsRecorder(w, sample_interval=5.0) for w in workers]
        for r in recorders:
            r.start()
        manager.submit_all(
            [
                JobSubmission(
                    label=f"long-{i}",
                    job=make_linear_job(f"long-{i}", 2000.0),
                    submit_time=50.0 * i,
                )
                for i in range(2)
            ]
        )
        # Run far past the last placement: quiesce fired, the recorder
        # keeps sampling, and pruning advances well past t=0.
        sim.run(until=1000.0)
        for worker in workers:
            for c in worker.running_containers():
                assert c.cgroup.history_floor > 0.0
        # A genuinely new submission re-engages the progress observer.
        manager.submit(
            JobSubmission(
                label="late",
                job=make_linear_job("late", 20.0),
                submit_time=1001.0,
            )
        )
        sim.run(until=1100.0)  # would raise ContainerError before the fix
        assert "late" in manager.placements
        for r in recorders:
            r.stop()
