"""Unit tests for the sharded executor (:mod:`repro.cluster.shards`).

The contracts under test:

* **Kind partition** — WORKER_LOCAL_KINDS and MANAGER_TOUCHPOINTS split
  :class:`EventKind` exactly, so a new kind is a shard boundary until
  proven worker-local.
* **Window hook** — ``Simulator.next_time_of`` reports the earliest
  live queued event of the given kinds, skipping cancelled handles.
* **Shard slicing** — contiguous, balanced, clamped to the item count.
* **Bit-identity** — a sharded run (inline, forced-pool, and
  broken-pool fallback) reproduces the plain :class:`FleetTicker`
  bit for bit: same traces, same allocations, same event counts.
* **Kernel purity** — the settle/alloc kernels are pure functions of
  their payloads: repeat calls and the in-parent allocation path
  produce the same bits, which is what makes pool offload exact.
"""

from __future__ import annotations

import pytest

from repro.cluster.contention import ContentionModel
from repro.cluster.fleet import (
    FleetTicker,
    _alloc_payload,
    _alloc_pending,
    _realloc_collect,
    _settle_collect,
    _settle_payload,
    alloc_kernel,
    settle_kernel,
)
from repro.cluster.shards import (
    MANAGER_TOUCHPOINTS,
    WORKER_LOCAL_KINDS,
    ShardedExecutor,
    _shard_kernels,
    _shard_slices,
)
from repro.cluster.worker import Worker
from repro.errors import ConfigError
from repro.metrics.recorder import MetricsRecorder
from repro.simcore.engine import Simulator
from repro.simcore.events import EventKind
from tests.cluster.test_fleet import _alloc_state, _build_fleet, _settle_state
from tests.conftest import make_linear_job


class TestKindPartition:
    def test_partition_is_exact(self):
        assert WORKER_LOCAL_KINDS | MANAGER_TOUCHPOINTS == frozenset(EventKind)
        assert not WORKER_LOCAL_KINDS & MANAGER_TOUCHPOINTS

    def test_fabric_event_forms_are_touchpoints(self):
        """Every event kind a fabric message can ride is a boundary."""
        for kind in (
            EventKind.JOB_ARRIVAL,
            EventKind.CONTAINER_EXIT,
            EventKind.CONTAINER_MIGRATION,
            EventKind.WORKER_PROVISION,
            EventKind.WORKER_FAIL,
            EventKind.WORKER_RECOVER,
            EventKind.MESSAGE,
            EventKind.GENERIC,
        ):
            assert kind in MANAGER_TOUCHPOINTS


class TestNextTimeOf:
    def test_earliest_matching_kind_wins(self):
        sim = Simulator(seed=0, trace=False)
        sim.schedule(5.0, lambda ev: None, kind=EventKind.METRIC_SAMPLE)
        sim.schedule(9.0, lambda ev: None, kind=EventKind.CONTAINER_EXIT)
        sim.schedule(12.0, lambda ev: None, kind=EventKind.MESSAGE)
        assert sim.next_time_of(MANAGER_TOUCHPOINTS) == 9.0
        assert sim.next_time_of(WORKER_LOCAL_KINDS) == 5.0
        assert sim.next_time_of({EventKind.MESSAGE}) == 12.0

    def test_cancelled_events_are_skipped(self):
        sim = Simulator(seed=0, trace=False)
        handle = sim.schedule(
            3.0, lambda ev: None, kind=EventKind.CONTAINER_EXIT
        )
        sim.schedule(7.0, lambda ev: None, kind=EventKind.CONTAINER_EXIT)
        handle.cancel()
        assert sim.next_time_of(MANAGER_TOUCHPOINTS) == 7.0

    def test_no_match_is_none(self):
        sim = Simulator(seed=0, trace=False)
        assert sim.next_time_of(MANAGER_TOUCHPOINTS) is None
        sim.schedule(2.0, lambda ev: None, kind=EventKind.METRIC_SAMPLE)
        assert sim.next_time_of(MANAGER_TOUCHPOINTS) is None


class TestShardSlices:
    def test_contiguous_and_exhaustive(self):
        for n_items in range(1, 12):
            for shards in range(1, 6):
                slices = _shard_slices(n_items, shards)
                items = list(range(n_items))
                covered = [x for sl in slices for x in items[sl]]
                assert covered == items  # contiguous, in order, complete

    def test_balanced_first_slices_take_the_extra(self):
        assert _shard_slices(10, 3) == [
            slice(0, 4), slice(4, 7), slice(7, 10)
        ]

    def test_clamped_to_item_count(self):
        assert _shard_slices(2, 8) == [slice(0, 1), slice(1, 2)]


class TestKernelPurity:
    def _collected(self, seed=11):
        sim, workers = _build_fleet(seed)
        sim.clock.advance_to(4.0)
        now, segments = _settle_collect(workers)
        return sim, workers, now, segments

    def test_settle_kernel_is_deterministic(self):
        _, _, _, segments = self._collected()
        payload = _settle_payload(segments)
        work_a, contrib_a = settle_kernel(payload)
        work_b, contrib_b = settle_kernel(payload)
        assert work_a.tobytes() == work_b.tobytes()
        assert contrib_a.tobytes() == contrib_b.tobytes()

    def test_alloc_kernel_matches_in_parent_allocation(self):
        """Fresh child-side allocators reproduce the parent's bits."""
        sim, workers, _, _ = self._collected()
        _, pending = _realloc_collect(workers)
        assert pending
        payload = _alloc_payload(pending)
        assert payload is not None
        want = [a.tolist() for a in _alloc_pending(pending)]
        got = [a.tolist() for a in alloc_kernel(payload)]
        assert got == want

    def test_shard_kernels_round_trip(self):
        """The pool-worker entry point: both kernels from one task dict."""
        sim, workers, _, segments = self._collected()
        _, pending = _realloc_collect(workers)
        task = {
            "settle": _settle_payload(segments),
            "alloc": _alloc_payload(pending),
        }
        out = _shard_kernels(task)
        assert set(out) == {"settle", "alloc"}
        assert _shard_kernels({}) == {}


def _sharded_fleet(
    n_workers: int,
    shards: int | None,
    sample_interval: float = 5.0,
    total_work: float = 10_000.0,
    jobs_per_worker: int = 1,
    streaming: bool = False,
    **executor_kwargs,
):
    """A ticked fleet armed with either FleetTicker or ShardedExecutor."""
    sim = Simulator(seed=0, trace=False)
    workers = [
        Worker(
            sim,
            name=f"w{i}",
            contention=ContentionModel.ideal(),
            max_containers=4,
        )
        for i in range(n_workers)
    ]
    for i, w in enumerate(workers):
        for k in range(jobs_per_worker):
            w.launch(
                make_linear_job(
                    f"w{i}-j{k}",
                    total_work=total_work,
                    demand=0.5 + 0.1 * ((i + k) % 5),
                )
            )
    recorders = [
        MetricsRecorder(w, sample_interval=sample_interval, streaming=streaming)
        for w in workers
    ]
    for r in recorders:
        r.start()
    if shards is None:
        ticker = FleetTicker(sim)
    else:
        ticker = ShardedExecutor(sim, shards=shards, **executor_kwargs)
    ticker.arm()
    return sim, workers, recorders, ticker


def _trace_series(recorders):
    out = {}
    for r in recorders:
        for trace in r.traces.values():
            for name in ("cpu_usage", "cpu_limit", "eval_value", "growth"):
                times, values = getattr(trace, name).arrays()
                out[f"{r.worker.name}:{trace.label}:{name}"] = (
                    times.tobytes(),
                    values.tobytes(),
                )
    return out


def _stop_all(*runs):
    for run in runs:
        for r in run[2]:
            r.stop()
        ticker = run[3]
        if isinstance(ticker, ShardedExecutor):
            ticker.close()


class TestShardedExecutor:
    def test_rejects_nonpositive_shards(self):
        sim = Simulator(seed=0, trace=False)
        with pytest.raises(ConfigError):
            ShardedExecutor(sim, shards=0)

    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_bitwise_parity_with_fleet_ticker(self, shards):
        plain = _sharded_fleet(5, None, jobs_per_worker=2)
        sharded = _sharded_fleet(5, shards, jobs_per_worker=2)
        for sim, *_ in (plain, sharded):
            sim.run(until=200.0)
        assert _trace_series(plain[2]) == _trace_series(sharded[2])
        assert _settle_state(plain[1]) == _settle_state(sharded[1])
        assert _alloc_state(plain[1]) == _alloc_state(sharded[1])
        assert plain[0].events_processed == sharded[0].events_processed
        assert sharded[3].shard_passes > 0
        _stop_all(plain, sharded)

    def test_streaming_recorders_shard_identically(self):
        plain = _sharded_fleet(4, None, streaming=True)
        sharded = _sharded_fleet(4, 2, streaming=True)
        for sim, *_ in (plain, sharded):
            sim.run(until=100.0)
        assert _settle_state(plain[1]) == _settle_state(sharded[1])
        assert plain[0].events_processed == sharded[0].events_processed
        assert sharded[3].fused_samples > 0
        _stop_all(plain, sharded)

    def test_shards_one_degenerates_to_plain_ticker(self):
        plain = _sharded_fleet(3, None)
        one = _sharded_fleet(3, 1)
        for sim, *_ in (plain, one):
            sim.run(until=60.0)
        assert _trace_series(plain[2]) == _trace_series(one[2])
        assert one[3].shard_passes == 0  # n<=1 path, no shard machinery
        assert one[3].windows > 0  # window stats still observed
        _stop_all(plain, one)

    def test_single_worker_never_batches(self):
        sim, workers, recorders, ticker = _sharded_fleet(1, 4)
        sim.run(until=30.0)
        assert ticker.fused_batches == 0  # lone ticks fire directly
        assert ticker.windows == 0
        _stop_all((sim, workers, recorders, ticker))

    def test_forced_pool_parity_and_dispatch(self):
        """min_parallel_rows=0 forces the pool path; bits still match."""
        plain = _sharded_fleet(4, None, jobs_per_worker=2)
        pooled = _sharded_fleet(
            4, 2, jobs_per_worker=2, min_parallel_rows=0
        )
        for sim, *_ in (plain, pooled):
            sim.run(until=120.0)
        assert _trace_series(plain[2]) == _trace_series(pooled[2])
        assert _settle_state(plain[1]) == _settle_state(pooled[1])
        assert _alloc_state(plain[1]) == _alloc_state(pooled[1])
        assert plain[0].events_processed == pooled[0].events_processed
        assert pooled[3].pool_dispatches > 0
        assert ShardedExecutor.child_peak_rss_mib() > 0.0
        _stop_all(plain, pooled)

    def test_forced_pool_singleton_shards_stay_inline(self):
        """One worker per shard: settle/alloc take the in-parent
        singleton paths even when the pool is engaged."""
        plain = _sharded_fleet(3, None)
        pooled = _sharded_fleet(3, 3, min_parallel_rows=0)
        for sim, *_ in (plain, pooled):
            sim.run(until=60.0)
        assert _trace_series(plain[2]) == _trace_series(pooled[2])
        assert _settle_state(plain[1]) == _settle_state(pooled[1])
        assert pooled[3].pool_dispatches > 0
        _stop_all(plain, pooled)

    def test_broken_pool_falls_back_inline(self):
        """A pool that cannot spawn degrades to the serial shard path."""
        plain = _sharded_fleet(4, None)
        broken = _sharded_fleet(4, 2, min_parallel_rows=0)
        broken[3]._pool_broken = True
        for sim, *_ in (plain, broken):
            sim.run(until=60.0)
        assert _trace_series(plain[2]) == _trace_series(broken[2])
        assert broken[3].pool_dispatches == 0
        assert broken[3].shard_passes > 0
        _stop_all(plain, broken)

    def test_min_window_gate_skips_dispatch(self):
        """An instant-wide window never pays the IPC round trip."""
        sim, workers, recorders, ticker = _sharded_fleet(
            3, 2, min_parallel_rows=0, min_window=float("inf")
        )
        sim.run(until=60.0)
        assert ticker.shard_passes > 0
        assert ticker.pool_dispatches == 0
        _stop_all((sim, workers, recorders, ticker))

    def test_close_is_idempotent_and_disarm_closes(self):
        sim, workers, recorders, ticker = _sharded_fleet(
            2, 2, min_parallel_rows=0
        )
        sim.run(until=20.0)
        assert ticker._pool is not None
        ticker.close()
        assert ticker._pool is None
        ticker.close()  # second close is a no-op
        sim.run(until=40.0)  # pool respawns lazily after close
        assert ticker._pool is not None
        ticker.disarm()
        assert ticker._pool is None
        for r in recorders:
            r.stop()

    def test_child_rss_is_nonnegative(self):
        assert ShardedExecutor.child_peak_rss_mib() >= 0.0


class TestWindowStats:
    def test_bounded_windows_track_next_touchpoint(self):
        """Exit projections are manager-bound, so windows stay finite."""
        sim, workers, recorders, ticker = _sharded_fleet(
            3, 2, total_work=200.0
        )
        sim.run(until=60.0)
        stats = ticker.stats()
        assert stats["windows"] > 0
        assert stats["unbounded_windows"] < stats["windows"]
        assert stats["mean_window"] > 0.0
        assert stats["max_window"] >= stats["mean_window"]
        _stop_all((sim, workers, recorders, ticker))

    def test_unbounded_window_when_no_touchpoint_queued(self):
        """Idle workers: only sampling ticks queued → no boundary."""
        sim = Simulator(seed=0, trace=False)
        workers = [
            Worker(sim, name=f"w{i}", contention=ContentionModel.ideal())
            for i in range(2)
        ]
        recorders = [MetricsRecorder(w, sample_interval=5.0) for w in workers]
        for r in recorders:
            r.start()
        ticker = ShardedExecutor(sim, shards=2)
        ticker.arm()
        sim.run(until=20.0)
        assert ticker.windows > 0
        assert ticker.unbounded_windows == ticker.windows
        assert ticker.stats()["mean_window"] == 0.0
        for r in recorders:
            r.stop()
        ticker.close()

    def test_horizon_bounds_the_window(self):
        sim = Simulator(seed=0, trace=False)
        workers = [
            Worker(sim, name=f"w{i}", contention=ContentionModel.ideal())
            for i in range(2)
        ]
        recorders = [MetricsRecorder(w, sample_interval=5.0) for w in workers]
        for r in recorders:
            r.start()
        ticker = ShardedExecutor(sim, shards=2, horizon=100.0)
        ticker.arm()
        sim.run(until=20.0)
        assert ticker.unbounded_windows == 0
        assert ticker.max_window <= 100.0
        assert ticker.lookahead() == 100.0
        for r in recorders:
            r.stop()
        ticker.close()
