"""Unit tests for live migration and the rebalance policies."""

from __future__ import annotations

import pytest

from repro.cluster.contention import ContentionModel
from repro.cluster.manager import Manager
from repro.cluster.rebalance import (
    REBALANCERS,
    MigrateOnExit,
    NoRebalance,
    ProgressAwareRebalance,
    make_rebalance,
)
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.errors import (
    CapacityError,
    ClusterError,
    ConfigError,
    ContainerStateError,
)
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job


def _worker(sim, name, capacity=1.0, slots=None):
    return Worker(
        sim,
        name=name,
        capacity=capacity,
        contention=ContentionModel.ideal(),
        max_containers=slots,
    )


def _submission(label, t, work=50.0):
    return JobSubmission(
        label=label, job=make_linear_job(label, work), submit_time=t
    )


class TestDetachAttach:
    def test_migrated_remaining_work_is_bit_exact(self):
        """Run → detach → attach reproduces a never-migrated run exactly.

        Both workers have the same capacity and the container runs alone
        on each, so the allocation history (1.0 throughout) is identical
        with and without migration — completion times must match to the
        last bit.
        """
        baseline = Simulator(seed=3, trace=False)
        w = _worker(baseline, "solo")
        c0 = w.launch(make_linear_job("ref", 100.0, demand=1.0))
        baseline.run_until_empty()
        expected = c0.completion_time()

        sim = Simulator(seed=3, trace=False)
        src = _worker(sim, "src")
        dst = _worker(sim, "dst")
        container = src.launch(make_linear_job("ref", 100.0, demand=1.0))
        sim.run(until=37.0)
        moved = src.detach(container.cid)
        assert moved is container
        assert src.running_containers() == []
        dst.attach(container)
        assert dst.running_containers() == [container]
        sim.run_until_empty()
        assert container.exited
        assert repr(container.completion_time()) == repr(expected)

    def test_detach_settles_and_keeps_cgroup_counters(self):
        sim = Simulator(seed=0, trace=False)
        src = _worker(sim, "src")
        dst = _worker(sim, "dst")
        container = src.launch(make_linear_job("j", 100.0, demand=1.0))
        sim.run(until=10.0)
        src.detach(container.cid)
        # 10 s at allocation 1.0 were delivered before the move.
        assert container.cgroup.cpu_seconds() == pytest.approx(10.0)
        assert container.job.remaining_work() == pytest.approx(90.0)
        dst.attach(container)
        sim.run_until_empty()
        assert container.cgroup.cpu_seconds() == pytest.approx(100.0)

    def test_detach_cancels_exit_and_source_journal(self):
        sim = Simulator(seed=0, trace=False)
        src = _worker(sim, "src")
        dst = _worker(sim, "dst")
        container = src.launch(make_linear_job("j", 50.0))
        sim.run(until=5.0)
        src.detach(container.cid)
        assert src.pool.count() == 0
        assert src.pool.total_finishes() == 1  # journal: left this node
        assert dst.pool.count() == 0
        dst.attach(container)
        assert dst.pool.total_arrivals() == 1
        sim.run_until_empty()
        assert container.exited

    def test_detach_non_running_raises(self):
        sim = Simulator(seed=0, trace=False)
        w = _worker(sim, "w")
        container = w.launch(make_linear_job("j", 10.0))
        sim.run_until_empty()
        assert container.exited
        with pytest.raises(ContainerStateError):
            w.detach(container.cid)

    def test_attach_requires_headroom(self):
        sim = Simulator(seed=0, trace=False)
        src = _worker(sim, "src")
        dst = _worker(sim, "dst", slots=1)
        dst.launch(make_linear_job("resident", 50.0))
        container = src.launch(make_linear_job("mover", 50.0))
        src.detach(container.cid)
        with pytest.raises(CapacityError):
            dst.attach(container)

    def test_attach_fires_launch_hooks(self):
        sim = Simulator(seed=0, trace=False)
        src = _worker(sim, "src")
        dst = _worker(sim, "dst")
        seen = []
        dst.launch_hooks.append(lambda c: seen.append(c.name))
        container = src.launch(make_linear_job("j", 50.0))
        src.detach(container.cid)
        dst.attach(container)
        assert seen == ["j"]

    def test_adopt_duplicate_rejected(self):
        sim = Simulator(seed=0, trace=False)
        w = _worker(sim, "w")
        container = w.launch(make_linear_job("j", 50.0))
        with pytest.raises(ContainerStateError):
            w.runtime.adopt(container)


class TestReservations:
    def test_reserved_slot_blocks_admission(self):
        sim = Simulator(seed=0, trace=False)
        w = _worker(sim, "w", slots=1)
        w.reserve_slot()
        assert not w.has_headroom()
        with pytest.raises(CapacityError):
            w.launch(make_linear_job("j", 10.0))
        w.release_reservation()
        assert w.has_headroom()
        w.launch(make_linear_job("j", 10.0))

    def test_reserve_without_headroom_raises(self):
        sim = Simulator(seed=0, trace=False)
        w = _worker(sim, "w", slots=1)
        w.launch(make_linear_job("j", 10.0))
        with pytest.raises(CapacityError):
            w.reserve_slot()

    def test_release_underflow_raises(self):
        sim = Simulator(seed=0, trace=False)
        w = _worker(sim, "w")
        with pytest.raises(CapacityError):
            w.release_reservation()


class TestPolicyValidation:
    def test_registry_and_factory(self):
        assert sorted(REBALANCERS) == ["migrate", "none", "progress"]
        assert isinstance(make_rebalance(None), NoRebalance)
        assert isinstance(make_rebalance("migrate"), MigrateOnExit)
        policy = ProgressAwareRebalance()
        assert make_rebalance(policy) is policy
        with pytest.raises(ClusterError):
            make_rebalance("gandiva")

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            MigrateOnExit(gap=1)
        with pytest.raises(ConfigError):
            MigrateOnExit(max_moves=0)
        with pytest.raises(ConfigError):
            ProgressAwareRebalance(min_gain=1.0)
        with pytest.raises(ConfigError):
            NoRebalance(migration_delay=-1.0)

    def test_unbound_progress_policy_raises(self):
        sim = Simulator(seed=0, trace=False)
        w = _worker(sim, "w")
        with pytest.raises(ClusterError):
            ProgressAwareRebalance().plan([w])


def _collect_completions(workers):
    done = []
    for worker in workers:
        worker.exit_hooks.append(lambda c: done.append(c.name))
    return done


class TestMigrateOnExit:
    def _cluster(self, rebalance):
        sim = Simulator(seed=0, trace=False)
        workers = [_worker(sim, "w0"), _worker(sim, "w1")]
        manager = Manager(sim, workers, rebalance=rebalance)
        return sim, workers, manager

    def test_counts_rebalance_after_exits(self):
        """Short jobs drain one worker; the other's surplus migrates."""
        sim, workers, manager = self._cluster("migrate")
        done = _collect_completions(workers)
        # Spread alternates: shorts and longs interleave, so one worker
        # ends up with a count surplus once the shorts finish.
        manager.submit_all(
            [
                _submission("S-1", 0.0, work=10.0),
                _submission("S-2", 0.0, work=10.0),
                _submission("L-1", 0.0, work=200.0),
                _submission("L-2", 0.0, work=200.0),
                _submission("L-3", 0.0, work=200.0),
                _submission("L-4", 0.0, work=200.0),
            ]
        )
        sim.run_until_empty()
        assert sorted(done) == ["L-1", "L-2", "L-3", "L-4", "S-1", "S-2"]
        assert manager.total_migrations > 0
        for label in manager.migrations:
            assert manager.placement_of(label).migrations >= 1

    def test_none_policy_never_migrates(self):
        sim, workers, manager = self._cluster("none")
        done = _collect_completions(workers)
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0, work=20.0 * i) for i in range(1, 6)]
        )
        sim.run_until_empty()
        assert len(done) == 5
        assert manager.migrations == {}
        assert manager.migration_delays == {}

    def test_migration_respects_admission_slots(self):
        sim = Simulator(seed=0, trace=False)
        workers = [
            _worker(sim, "w0", slots=2),
            _worker(sim, "w1", slots=2),
        ]
        manager = Manager(sim, workers, rebalance="migrate")
        manager.submit_all(
            [
                _submission("S-1", 0.0, work=5.0),
                _submission("L-1", 0.0, work=300.0),
                _submission("L-2", 0.0, work=300.0),
                _submission("L-3", 1.0, work=300.0),
            ]
        )
        while True:
            event = sim.step()
            if event is None:
                break
            for w in workers:
                assert len(w.running_containers()) + w.reserved <= 2
        assert manager.queue_len == 0


class TestProgressAwareRebalance:
    def _straggler_cluster(self, rebalance):
        """One full-speed and one quarter-speed worker."""
        sim = Simulator(seed=0, trace=False)
        workers = [
            _worker(sim, "w0"),
            _worker(sim, "w1", capacity=0.25),
        ]
        manager = Manager(sim, workers, rebalance=rebalance)
        return sim, workers, manager

    def _submit_straggler_mix(self, manager):
        # Spread by (count, load, name): J-1→w0; J-2→w1; J-3→w1 (w1's
        # load 0.25 < w0's 1.0); J-4→w0.  Staggered short jobs on w0
        # produce the exit events whose observations build the signal.
        manager.submit_all(
            [
                _submission("J-1", 0.0, work=30.0),
                _submission("J-2", 0.0, work=100.0),
                _submission("J-3", 0.0, work=100.0),
                _submission("J-4", 0.0, work=40.0),
            ]
        )

    def test_straggler_jobs_migrate_and_finish_sooner(self):
        sim, workers, manager = self._straggler_cluster("progress")
        done = _collect_completions(workers)
        self._submit_straggler_mix(manager)
        sim.run_until_empty()
        makespan = sim.now

        base_sim, base_workers, base_manager = self._straggler_cluster("none")
        base_done = _collect_completions(base_workers)
        self._submit_straggler_mix(base_manager)
        base_sim.run_until_empty()

        assert sorted(done) == sorted(base_done)
        assert manager.total_migrations >= 1
        assert set(manager.migrations) <= {"J-2", "J-3"}
        assert makespan < 0.7 * base_sim.now

    def test_migrated_placement_points_at_final_host(self):
        sim, workers, manager = self._straggler_cluster("progress")
        self._submit_straggler_mix(manager)
        sim.run_until_empty()
        for label in manager.migrations:
            record = manager.placement_of(label)
            assert record.worker_name == "w0"
            assert record.migrations == manager.migrations[label]

    def test_in_flight_delay_recorded_and_reservations_drain(self):
        sim, workers, manager = self._straggler_cluster(
            ProgressAwareRebalance(migration_delay=4.0)
        )
        done = _collect_completions(workers)
        self._submit_straggler_mix(manager)
        sim.run_until_empty()
        assert len(done) == 4
        assert manager.in_flight == 0
        assert all(w.reserved == 0 for w in workers)
        for label, count in manager.migrations.items():
            assert manager.migration_delays[label] == pytest.approx(
                4.0 * count
            )
            record = manager.placement_of(label)
            assert record.migration_delay == pytest.approx(4.0 * count)

    def test_balanced_homogeneous_cluster_never_churns(self):
        sim = Simulator(seed=0, trace=False)
        workers = [_worker(sim, "w0"), _worker(sim, "w1")]
        manager = Manager(sim, workers, rebalance="progress")
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0, work=60.0) for i in range(1, 5)]
        )
        sim.run_until_empty()
        assert manager.total_migrations == 0


def _memory_job(name, work, memory):
    """Linear job with an explicit resident-memory footprint."""
    from repro.containers.spec import ResourceSpec
    from repro.workloads.curves import PiecewiseLinearCurve
    from repro.workloads.evalfn import EvalFunction, EvalKind
    from repro.workloads.job import TrainingJob

    return TrainingJob(
        name=name,
        total_work=work,
        curve=PiecewiseLinearCurve([(0.0, 1.0), (1.0, 0.0)]),
        evalfn=EvalFunction(kind=EvalKind.SQUARED_LOSS, start=1.0, converged=0.0),
        footprint=ResourceSpec(cpu_demand=1.0, memory=memory),
        total_iterations=1000,
    )


class TestFootprintMigrationCost:
    """migration_delay="footprint"/callable: checkpoint cost from memory."""

    def test_delay_for_constant_footprint_and_callable(self):
        from repro.cluster.rebalance import FOOTPRINT_DELAY_SCALE

        sim = Simulator(seed=0, trace=False)
        w = _worker(sim, "w")
        heavy = w.launch(_memory_job("heavy", 50.0, memory=0.4))
        light = w.launch(_memory_job("light", 50.0, memory=0.1))

        constant = ProgressAwareRebalance(migration_delay=3.0)
        assert constant.delay_for(heavy) == 3.0
        assert constant.delay_for(light) == 3.0

        footprint = ProgressAwareRebalance(migration_delay="footprint")
        assert footprint.delay_for(heavy) == pytest.approx(
            0.4 * FOOTPRINT_DELAY_SCALE
        )
        assert footprint.delay_for(light) == pytest.approx(
            0.1 * FOOTPRINT_DELAY_SCALE
        )

        custom = MigrateOnExit(
            migration_delay=lambda c: 2.0 * c.job.footprint.memory
        )
        assert custom.delay_for(heavy) == pytest.approx(0.8)

    def test_bad_delay_specs_rejected(self):
        with pytest.raises(ConfigError):
            ProgressAwareRebalance(migration_delay="checkpoint")
        with pytest.raises(ConfigError):
            MigrateOnExit(migration_delay=-0.5)
        sim = Simulator(seed=0, trace=False)
        w = _worker(sim, "w")
        c = w.launch(_memory_job("j", 50.0, memory=0.1))
        negative = ProgressAwareRebalance(migration_delay=lambda _c: -1.0)
        with pytest.raises(ConfigError):
            negative.delay_for(c)

    def test_describe_names_the_model(self):
        assert "footprint" in ProgressAwareRebalance(
            migration_delay="footprint"
        ).describe()
        assert "3s" in ProgressAwareRebalance(migration_delay=3.0).describe()

    def _two_victim_cluster(self, policy):
        """Donor with a heavy (cid-first) and a light container; idle target.

        Same job size and demand, so progress rates tie and the
        historical tie-break (lowest cid = the heavy container) decides
        the preferred migrant under a constant delay model.
        """
        sim = Simulator(seed=0, trace=False)
        donor = _worker(sim, "donor")
        target = _worker(sim, "idle")
        policy.bind(sim)
        heavy = donor.launch(_memory_job("heavy", 30.0, memory=0.9))
        light = donor.launch(_memory_job("light", 30.0, memory=0.05))
        # Two observation passes so both containers grow a progress rate.
        sim.schedule(5.0, lambda e: None)
        sim.schedule(10.0, lambda e: None)
        sim.run(until=6.0)
        assert policy.plan([donor, target]) == []  # single sample: no rate
        sim.run(until=11.0)
        return sim, donor, target, heavy, light

    def test_constant_delay_prefers_the_slowest_tiebreak_cid(self):
        policy = ProgressAwareRebalance(migration_delay=3.0)
        _, donor, target, heavy, _light = self._two_victim_cluster(policy)
        moves = policy.plan([donor, target])
        assert moves and moves[0].container is heavy

    def test_heavy_container_stops_being_preferred_under_footprint(self):
        """Checkpoint cost outweighs the share gain for the heavy job.

        Expected saving is (1 − 1/gain) · remaining/share ≈ 25 s here;
        the heavy container's footprint delay (0.9 × 40 = 36 s) exceeds
        it, the light one's (2 s) does not — so the plan skips the
        heavy container the constant model would have moved.
        """
        policy = ProgressAwareRebalance(migration_delay="footprint")
        _, donor, target, _heavy, light = self._two_victim_cluster(policy)
        moves = policy.plan([donor, target])
        assert moves and moves[0].container is light

    def test_footprint_delay_lands_in_manager_records(self):
        from repro.cluster.rebalance import FOOTPRINT_DELAY_SCALE

        sim = Simulator(seed=0, trace=False)
        workers = [
            _worker(sim, "w0", capacity=1.0),
            _worker(sim, "w1", capacity=0.25),
        ]
        manager = Manager(
            sim,
            workers,
            rebalance=ProgressAwareRebalance(
                migration_delay="footprint", min_gain=1.2
            ),
        )
        done = _collect_completions(workers)
        manager.submit_all(
            [
                JobSubmission(
                    label=f"Job-{i}",
                    job=_memory_job(f"Job-{i}", 120.0, memory=0.2),
                    submit_time=0.0,
                )
                for i in range(1, 5)
            ]
        )
        sim.run_until_empty()
        assert len(done) == 4
        for label, count in manager.migrations.items():
            assert manager.migration_delays[label] == pytest.approx(
                0.2 * FOOTPRINT_DELAY_SCALE * count
            )


class TestDrainingWorkers:
    def test_draining_worker_is_no_migration_target(self):
        from repro.cluster.rebalance import _has_headroom

        sim = Simulator(seed=0, trace=False)
        w = _worker(sim, "w", slots=4)
        assert _has_headroom(w, 0)
        w.draining = True
        assert not _has_headroom(w, 0)

    def test_migrate_on_exit_skips_draining_targets(self):
        sim = Simulator(seed=0, trace=False)
        donor = _worker(sim, "donor")
        idle = _worker(sim, "idle")
        for i in range(4):
            donor.launch(make_linear_job(f"j{i}", 200.0))
        idle.draining = True
        assert MigrateOnExit().plan([donor, idle]) == []
        idle.draining = False
        assert MigrateOnExit().plan([donor, idle])
