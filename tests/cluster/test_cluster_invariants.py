"""Invariant/fuzz harness for the cluster scheduling layer.

Example-based tests pin known shapes; this harness sweeps *seeded
random* cluster shapes — 1–8 workers, mixed capacities, bounded and
unbounded admission slots, multi-tenant submissions with random
weights/priorities — through the admission × placement × rebalance
policy matrix (and autoscaling on/off) and asserts the conservation
invariants that must hold for any of them:

* every submitted job completes **exactly once**, wherever migrations
  (or autoscaled placements, or crash-restarts) took it — under fault
  injection, every job that did not exhaust its retry budget;
* a job is recorded completed *or* retry-exhausted, never both;
* no worker ever exceeds its admission slots (in-flight migration
  reservations included), checked after *every* simulation event;
* the admission queue fully drains — under ``wfq`` this doubles as the
  no-starvation witness: every tenant with positive weight finishes;
* repeating a run with the same seed is bit-identical;
* the fused fleet-tick engine (``fleet_mode``) reproduces the serial
  per-worker path bit-for-bit — completion times, failure records *and*
  every recorded metric series — across the same policy matrix.

Shapes are drawn from a ``numpy`` generator seeded independently of the
simulator, so the same test seed always fuzzes the same cluster.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.cluster.admission import ADMISSIONS
from repro.cluster.autoscale import AUTOSCALERS, QueueDepthAutoscale
from repro.cluster.contention import ContentionModel
from repro.cluster.fabric import FABRICS, NETWORK_FAULTS
from repro.cluster.failures import FAILURES, RandomFailures
from repro.cluster.fleet import FleetTicker
from repro.cluster.shards import ShardedExecutor
from repro.cluster.manager import Manager
from repro.cluster.placement import PLACEMENTS
from repro.cluster.rebalance import (
    REBALANCERS,
    MigrateOnExit,
    ProgressAwareRebalance,
)
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.metrics.recorder import MetricsRecorder
from repro.metrics.sketch import StreamMetrics
from repro.simcore.engine import Simulator
from repro.workloads.generator import STREAM_FAMILIES, make_stream
from repro.workloads.models import MODEL_ZOO
from tests.conftest import make_linear_job

_CAPACITY_POOL = [0.25, 0.5, 1.0]
_TENANT_POOL = ["alpha", "beta", "gamma"]


def _random_shape(seed: int):
    """Cluster + workload shape for one fuzz case (pure function of seed)."""
    rng = np.random.default_rng(seed)
    n_workers = int(rng.integers(1, 9))
    capacities = [float(rng.choice(_CAPACITY_POOL)) for _ in range(n_workers)]
    slots = [
        int(rng.integers(1, 5)) if rng.random() < 0.5 else None
        for _ in range(n_workers)
    ]
    n_jobs = int(rng.integers(6, 13))
    jobs = [
        (
            f"Job-{i}",
            float(rng.uniform(10.0, 80.0)),   # total work
            float(rng.uniform(0.5, 1.0)),     # demand ceiling
            float(rng.uniform(0.0, 60.0)),    # submit time
            str(rng.choice(_TENANT_POOL)),    # tenant
            float(rng.uniform(0.5, 4.0)),     # wfq weight
            int(rng.integers(0, 3)),          # priority class
        )
        for i in range(1, n_jobs + 1)
    ]
    return capacities, slots, jobs


def _run_checked(
    seed: int,
    placement: str,
    rebalance,
    admission="fifo",
    autoscale=None,
    failures=None,
    fabric=None,
    fleet_mode=None,
    shards=None,
    min_parallel_rows=None,
) -> dict[str, str]:
    """Run one fuzz case, asserting invariants; return label → repr(t_f).

    ``fleet_mode=None`` (the default) runs without metric recorders —
    the historical harness.  ``False``/``True`` attach a started
    recorder to every worker (provisioned ones included) and run the
    serial/fused sampling path respectively; the returned summary then
    also digests every recorded series bit-for-bit, so comparing a
    ``False`` run against a ``True`` run proves the fused engine changed
    nothing.  ``shards=N`` arms a :class:`ShardedExecutor` instead of
    the plain ticker (implies the fused arena; recorders attach as with
    ``fleet_mode=True``); ``min_parallel_rows=0`` forces its process
    pool so the fork/IPC path itself is parity-checked.
    """
    capacities, slots, jobs = _random_shape(seed)
    sim = Simulator(seed=seed, trace=False)
    workers = [
        Worker(
            sim,
            name=f"w{i}",
            capacity=cap,
            contention=ContentionModel.ideal(),
            max_containers=n,
        )
        for i, (cap, n) in enumerate(zip(capacities, slots))
    ]

    def factory(name):
        return Worker(
            sim,
            name=name,
            capacity=1.0,
            contention=ContentionModel.ideal(),
            max_containers=2,
        )

    manager = Manager(
        sim,
        workers,
        placement=placement,
        rebalance=rebalance,
        admission=admission,
        autoscale=autoscale,
        failures=failures,
        fabric=fabric,
        worker_factory=factory,
    )
    finished: list[tuple[str, float]] = []

    def record(c):
        finished.append((c.name, c.finished_at))

    for worker in workers:
        worker.exit_hooks.append(record)
    manager.provision_hooks.append(
        lambda w: w.exit_hooks.append(record)
    )
    recorders: list[MetricsRecorder] = []
    executor = None
    if shards is not None:
        fleet_mode = True
        kwargs = {}
        if min_parallel_rows is not None:
            kwargs["min_parallel_rows"] = min_parallel_rows
        executor = ShardedExecutor(sim, shards=shards, **kwargs)
        executor.arm()
    if fleet_mode is not None:
        if fleet_mode and executor is None:
            FleetTicker(sim).arm()

        def instrument(w):
            recorder = MetricsRecorder(w, sample_interval=5.0)
            recorder.start()
            recorders.append(recorder)

        for worker in workers:
            instrument(worker)
        manager.provision_hooks.append(instrument)
    manager.submit_all(
        [
            JobSubmission(
                label=label,
                job=make_linear_job(label, work, demand=demand),
                submit_time=t,
                tenant=tenant,
                weight=weight,
                priority=priority,
            )
            for label, work, demand, t, tenant, weight, priority in jobs
        ]
    )
    def check_slots(event):
        for worker in manager.workers:
            occupied = len(worker.running_containers()) + worker.reserved
            assert worker.max_containers is None or (
                occupied <= worker.max_containers
            ), f"{worker.name} over capacity after {event!r}"

    if recorders:
        # Recorders reschedule themselves forever; step until every job
        # resolves (like the runner), then stop sampling and drain the
        # remaining manager/autoscale events.
        expected = len(jobs)
        while len(finished) + len(manager.failed) < expected:
            event = sim.step()
            if event is None:
                break
            check_slots(event)
        for recorder in recorders:
            recorder.stop()
    while True:
        event = sim.step()
        if event is None:
            break
        check_slots(event)
    if executor is not None:
        executor.close()

    # Exactly-once completion, wherever migrations/autoscaling/crash-
    # restarts took each job — under wfq this is the no-starvation
    # witness: every tenant holds positive weight and all of its jobs
    # finished.  Under fault injection, jobs that exhausted their retry
    # budget land in manager.failed instead — never in both.
    labels = sorted(name for name, _ in finished)
    assert labels == sorted(
        label for label, *_ in jobs if label not in manager.failed
    )
    assert not set(manager.failed) & set(labels)
    # The admission queue fully drained and nothing is still in flight.
    assert manager.queue_len == 0
    assert manager.pending == 0
    assert manager.in_flight == 0
    assert manager.provisions_pending == 0
    assert all(w.reserved == 0 for w in manager.workers)
    assert all(not w.running_containers() for w in manager.workers)
    # Every placed job's record points at a worker that existed (it may
    # since have been retired by the autoscaler or crashed).
    names = (
        {w.name for w in manager.workers}
        | {f"worker-{i}" for i in range(manager._next_worker_idx)}
        | manager.crashed_workers
    )
    for label, *_ in jobs:
        if label in manager.failed and label not in manager.placements:
            # A job whose placement messages never got through has no
            # placement record — there was never a launch to record.
            continue
        assert manager.placement_of(label).worker_name in names
    # The fleet timeline is monotone in time and ends at the live count.
    times = [t for t, _ in manager.fleet_timeline]
    assert times == sorted(times)
    assert manager.fleet_timeline[-1][1] == len(manager.workers)
    result = {name: repr(t) for name, t in finished}
    for label, (used, lost) in manager.failed.items():
        result[f"failed:{label}"] = repr((used, lost))
    for label, used in manager.retries.items():
        result[f"retries:{label}"] = repr(used)
    for key, value in sorted(manager.fabric.stats().items()):
        result[f"fabric:{key}"] = repr(value)
    # Bit-exact digest of every recorded series: the serial vs fused
    # comparison must not lose or perturb a single sample.
    for recorder in recorders:
        for cid in sorted(recorder.traces):
            trace = recorder.traces[cid]
            digest = hashlib.sha256()
            for series in (
                trace.cpu_usage,
                trace.cpu_limit,
                trace.eval_value,
                trace.growth,
            ):
                if len(series):
                    times, values = series.arrays()
                    digest.update(times.tobytes())
                    digest.update(values.tobytes())
            key = f"trace:{recorder.worker.name}:{trace.label}"
            result[key] = digest.hexdigest()
    return result


@pytest.mark.parametrize("placement", sorted(PLACEMENTS))
@pytest.mark.parametrize("rebalance", sorted(REBALANCERS))
@pytest.mark.parametrize("seed", [0, 1])
def test_conservation_invariants(placement, rebalance, seed):
    """Invariants hold and repeat runs are bit-identical, for every
    placement × rebalance combination on random cluster shapes."""
    first = _run_checked(seed, placement, rebalance)
    second = _run_checked(seed, placement, rebalance)
    assert first == second


@pytest.mark.parametrize("admission", sorted(ADMISSIONS))
@pytest.mark.parametrize("placement", ["spread", "progress"])
@pytest.mark.parametrize("rebalance", ["none", "progress"])
@pytest.mark.parametrize("seed", [0, 1])
def test_admission_matrix_invariants(admission, placement, rebalance, seed):
    """Every admission policy preserves the invariants across the
    placement × rebalance matrix, bit-identically on repeats."""
    first = _run_checked(seed, placement, rebalance, admission=admission)
    second = _run_checked(seed, placement, rebalance, admission=admission)
    assert first == second


@pytest.mark.parametrize("admission", sorted(ADMISSIONS))
@pytest.mark.parametrize("seed", [5, 6])
def test_autoscale_on_preserves_invariants(admission, seed):
    """An elastic fleet (provision + drain/retire churn) keeps every
    invariant for every admission policy, bit-identically on repeats."""
    factory = lambda: QueueDepthAutoscale(  # noqa: E731
        up_threshold=2, provision_delay=5.0, cooldown=0.0
    )
    first = _run_checked(
        seed, "spread", "none", admission=admission, autoscale=factory()
    )
    second = _run_checked(
        seed, "spread", "none", admission=admission, autoscale=factory()
    )
    assert first == second


@pytest.mark.parametrize("seed", [7])
def test_autoscale_composes_with_rebalancing(seed):
    """Autoscale + live migration together still conserve every job."""
    first = _run_checked(
        seed,
        "spread",
        ProgressAwareRebalance(migration_delay=2.0),
        autoscale=QueueDepthAutoscale(
            up_threshold=2, provision_delay=5.0, cooldown=0.0
        ),
    )
    second = _run_checked(
        seed,
        "spread",
        ProgressAwareRebalance(migration_delay=2.0),
        autoscale=QueueDepthAutoscale(
            up_threshold=2, provision_delay=5.0, cooldown=0.0
        ),
    )
    assert first == second


@pytest.mark.parametrize("seed", [2, 3, 4])
@pytest.mark.parametrize(
    "factory",
    [
        lambda: MigrateOnExit(migration_delay=3.0),
        lambda: ProgressAwareRebalance(migration_delay=3.0),
        lambda: ProgressAwareRebalance(migration_delay="footprint"),
    ],
    ids=["migrate-delayed", "progress-delayed", "progress-footprint"],
)
def test_invariants_with_in_flight_migrations(seed, factory):
    """Checkpoint/restore delay keeps every invariant intact."""
    first = _run_checked(seed, "spread", factory())
    second = _run_checked(seed, "spread", factory())
    assert first == second


@pytest.mark.parametrize(
    "failures", ["random", "random:checkpoint", "random:checkpoint(20)"]
)
@pytest.mark.parametrize("admission", ["fifo", "wfq"])
@pytest.mark.parametrize("seed", [0, 1])
def test_chaos_invariants(failures, admission, seed):
    """Random crash/recover plans preserve every invariant.

    The injector draws seeded fail-stop crashes (some permanent, some
    recovering) against the fuzzed cluster; every job that does not
    exhaust its retry budget still completes exactly once, nothing
    leaks, and repeats are bit-identical — under both lost and
    checkpointed durability.
    """
    first = _run_checked(seed, "spread", "none",
                         admission=admission, failures=failures)
    second = _run_checked(seed, "spread", "none",
                          admission=admission, failures=failures)
    assert first == second


@pytest.mark.parametrize("rebalance", ["migrate", "progress"])
@pytest.mark.parametrize("seed", [2, 3])
def test_chaos_composes_with_migration(rebalance, seed):
    """Crashes landing amid live migrations still conserve every job."""
    first = _run_checked(
        seed, "spread", rebalance, failures="random:checkpoint"
    )
    second = _run_checked(
        seed, "spread", rebalance, failures="random:checkpoint"
    )
    assert first == second


@pytest.mark.parametrize("seed", [5, 7])
def test_chaos_composes_with_autoscale(seed):
    """Crash/recover churn on top of provision/retire churn holds up."""
    def run():
        return _run_checked(
            seed,
            "spread",
            "none",
            autoscale=QueueDepthAutoscale(
                up_threshold=2, provision_delay=5.0, cooldown=0.0
            ),
            failures=RandomFailures(durability="checkpoint(20)"),
        )

    assert run() == run()


#: Network fault plans fuzzed against the policy matrix: plain loss,
#: loss + latency + duplication under tight retries, a healing
#: partition, and a never-healing gray link to the first worker (the
#: harness always names it ``w0``).
_FABRIC_PLANS = [
    "drop(0.25)",
    "delay(exp,0.3)+duplicate(0.5):retry(max=6,base=0.2)",
    "partition(20..60):retry(max=8,base=0.5)",
    "gray_link(w0,4.0)",
]


class TestFabricChaosInvariants:
    """Network fault plans × the policy matrix (satellite a).

    Every run asserts the same conservation invariants as the rest of
    the harness — exactly-once-or-failed accounting, queue drain, no
    leaked reservations — now under dropped, delayed, duplicated and
    partitioned control-plane messages, alone and composed with worker
    crashes, both durabilities, admission/placement/rebalance/autoscale
    churn.  Repeats are bit-identical, fabric counters included.
    """

    @pytest.mark.parametrize("plan", _FABRIC_PLANS)
    @pytest.mark.parametrize("admission", ["fifo", "wfq"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_fault_plan_matrix(self, plan, admission, seed):
        first = _run_checked(
            seed, "spread", "none", admission=admission, fabric=plan
        )
        second = _run_checked(
            seed, "spread", "none", admission=admission, fabric=plan
        )
        assert first == second

    @pytest.mark.parametrize("plan", _FABRIC_PLANS)
    @pytest.mark.parametrize("placement", sorted(PLACEMENTS))
    @pytest.mark.parametrize("seed", [2])
    def test_fault_plan_placement_axis(self, plan, placement, seed):
        first = _run_checked(seed, placement, "none", fabric=plan)
        second = _run_checked(seed, placement, "none", fabric=plan)
        assert first == second

    @pytest.mark.parametrize(
        "failures", ["random", "random:checkpoint", "random:checkpoint(20)"]
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_composes_with_worker_crashes(self, failures, seed):
        """Message faults and node crashes at once: epoch-stamped
        reservations keep a crash from leaking slots reserved by
        in-flight messages, under both durability models."""
        plan = "drop(0.2)+duplicate(0.3)"
        first = _run_checked(
            seed, "spread", "none", failures=failures, fabric=plan
        )
        second = _run_checked(
            seed, "spread", "none", failures=failures, fabric=plan
        )
        assert first == second

    @pytest.mark.parametrize("seed", [3, 5])
    def test_composes_with_autoscale_and_rebalance(self, seed):
        """Partitioned provisions/retires plus lossy migration legs:
        undeliverable attach messages resolve through the orphan path,
        never stranding a container or a reservation."""
        def run():
            return _run_checked(
                seed,
                "spread",
                ProgressAwareRebalance(migration_delay=2.0),
                admission="sjf",
                autoscale=QueueDepthAutoscale(
                    up_threshold=2, provision_delay=5.0, cooldown=0.0
                ),
                fabric="partition(20..60)+drop(0.1):retry(max=8,base=0.5)",
            )

        assert run() == run()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_duplicate_storm_is_idempotent(self, seed):
        """duplicate(1.0) doubles every delivery; receiver-side dedup
        must make the run indistinguishable in *accounting* (the
        counters differ, so compare the completion/failure keys)."""
        dup = _run_checked(
            seed, "spread", "none",
            fabric="duplicate(1.0):retry(max=4,base=0.2)",
        )
        clean = _run_checked(
            seed, "spread", "none",
            fabric="delay(const,0.0):retry(max=4,base=0.2)",
        )
        strip = lambda r: {  # noqa: E731
            k: v for k, v in r.items() if not k.startswith("fabric:")
        }
        assert strip(dup) == strip(clean)
        assert dup["fabric:duplicates_suppressed"] != repr(0.0)

    @pytest.mark.parametrize("seed", [4])
    def test_fleet_mode_parity_under_faults(self, seed):
        """The fused tick engine composes with MESSAGE events."""
        plan = "drop(0.2)+delay(exp,0.2)"
        serial = _run_checked(
            seed, "spread", "none", fabric=plan, fleet_mode=False
        )
        fused = _run_checked(
            seed, "spread", "none", fabric=plan, fleet_mode=True
        )
        assert serial == fused


class TestFleetModeParity:
    """The fused fleet-tick engine vs the serial oracle, fuzzed.

    Every test runs the same random cluster shape twice — serial
    sampling and fused (``FleetTicker`` armed) — and asserts the full
    summaries match bit-for-bit: completion times, failure/retry
    records and a sha256 over every recorded metric series.  Together
    the tests sweep all five policy axes (placement, rebalance,
    admission, autoscale, failures).
    """

    @pytest.mark.parametrize("placement", sorted(PLACEMENTS))
    @pytest.mark.parametrize("rebalance", sorted(REBALANCERS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_placement_rebalance_matrix(self, placement, rebalance, seed):
        serial = _run_checked(
            seed, placement, rebalance, fleet_mode=False
        )
        fused = _run_checked(seed, placement, rebalance, fleet_mode=True)
        assert serial == fused

    @pytest.mark.parametrize("admission", sorted(ADMISSIONS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_admission_axis(self, admission, seed):
        serial = _run_checked(
            seed, "spread", "none", admission=admission, fleet_mode=False
        )
        fused = _run_checked(
            seed, "spread", "none", admission=admission, fleet_mode=True
        )
        assert serial == fused

    @pytest.mark.parametrize("seed", [5, 6])
    def test_autoscale_axis(self, seed):
        """Provision/retire churn: the fused pass must track recorders
        attached to workers born mid-run."""
        def run(fleet_mode):
            return _run_checked(
                seed,
                "spread",
                "none",
                autoscale=QueueDepthAutoscale(
                    up_threshold=2, provision_delay=5.0, cooldown=0.0
                ),
                fleet_mode=fleet_mode,
            )

        assert run(False) == run(True)

    @pytest.mark.parametrize(
        "failures", ["random", "random:checkpoint(20)"]
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_failures_axis(self, failures, seed):
        """Crash/recover churn: packed arenas built and torn down around
        workers dying mid-tick must not perturb a single sample."""
        serial = _run_checked(
            seed, "spread", "none", failures=failures, fleet_mode=False
        )
        fused = _run_checked(
            seed, "spread", "none", failures=failures, fleet_mode=True
        )
        assert serial == fused

    @pytest.mark.parametrize("seed", [2, 3])
    def test_composed_axes(self, seed):
        """Migration + autoscale + non-fifo admission, fused vs serial."""
        def run(fleet_mode):
            return _run_checked(
                seed,
                "binpack",
                MigrateOnExit(migration_delay=3.0),
                admission="sjf",
                autoscale=QueueDepthAutoscale(
                    up_threshold=2, provision_delay=5.0, cooldown=0.0
                ),
                fleet_mode=fleet_mode,
            )

        assert run(False) == run(True)

    @pytest.mark.parametrize("seed", [0, 4])
    def test_fused_repeat_is_bit_identical(self, seed):
        """Fused runs are also deterministic against themselves."""
        first = _run_checked(seed, "spread", "none", fleet_mode=True)
        second = _run_checked(seed, "spread", "none", fleet_mode=True)
        assert first == second


class TestShardParity:
    """Sharded single-run execution vs the serial oracle, fuzzed.

    Every test runs the same random cluster shape twice — serial
    per-worker sampling and sharded (:class:`ShardedExecutor` slicing
    the fused arena into contiguous worker shards) — and asserts the
    full summaries match bit-for-bit: completion times, failure/retry
    records, **fabric counters** and a sha256 over every recorded
    metric series.  The sweep spans shards ∈ {1, 2, 4} × admission ×
    placement × crash/recover × fabric fault plans; one test forces the
    process-pool path so the fork/IPC kernels are parity-checked too.
    """

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("placement", sorted(PLACEMENTS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_placement_axis(self, shards, placement, seed):
        serial = _run_checked(seed, placement, "none", fleet_mode=False)
        sharded = _run_checked(seed, placement, "none", shards=shards)
        assert serial == sharded

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("admission", sorted(ADMISSIONS))
    @pytest.mark.parametrize("seed", [0, 2])
    def test_admission_axis(self, shards, admission, seed):
        serial = _run_checked(
            seed, "spread", "none", admission=admission, fleet_mode=False
        )
        sharded = _run_checked(
            seed, "spread", "none", admission=admission, shards=shards
        )
        assert serial == sharded

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize(
        "failures", ["random", "random:checkpoint(20)"]
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_crash_recover_axis(self, shards, failures, seed):
        """Workers dying and recovering mid-run reshape the shard
        partition every batch; not a sample may move."""
        serial = _run_checked(
            seed, "spread", "none", failures=failures, fleet_mode=False
        )
        sharded = _run_checked(
            seed, "spread", "none", failures=failures, shards=shards
        )
        assert serial == sharded

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("plan", _FABRIC_PLANS)
    def test_fabric_fault_plans(self, shards, plan):
        """Lossy control-plane MESSAGE traffic bounds every window; the
        digests compare fabric delivery counters bit-for-bit too."""
        seed = 4
        serial = _run_checked(
            seed, "spread", "none", fabric=plan, fleet_mode=False
        )
        sharded = _run_checked(
            seed, "spread", "none", fabric=plan, shards=shards
        )
        assert serial == sharded

    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize("seed", [2, 3])
    def test_composed_axes(self, shards, seed):
        """Migration + autoscale + non-fifo admission, sharded vs
        serial — cross-shard container movement at its densest."""
        def run(**kwargs):
            return _run_checked(
                seed,
                "binpack",
                MigrateOnExit(migration_delay=3.0),
                admission="sjf",
                autoscale=QueueDepthAutoscale(
                    up_threshold=2, provision_delay=5.0, cooldown=0.0
                ),
                **kwargs,
            )

        assert run(fleet_mode=False) == run(shards=shards)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_forced_pool_parity(self, seed):
        """``min_parallel_rows=0`` pushes every batch through the
        process pool: the out-of-process kernels must produce the same
        bits as the serial engine."""
        serial = _run_checked(seed, "spread", "none", fleet_mode=False)
        pooled = _run_checked(
            seed, "spread", "none", shards=2, min_parallel_rows=0
        )
        assert serial == pooled

    @pytest.mark.parametrize("seed", [5])
    def test_sharded_repeat_is_bit_identical(self, seed):
        """Sharded runs are also deterministic against themselves."""
        first = _run_checked(seed, "spread", "none", shards=4)
        second = _run_checked(seed, "spread", "none", shards=4)
        assert first == second


_STREAM_TENANTS = (("alpha", 2.0, 1.0), ("beta", 1.0, 2.0), ("gamma", 1.0, 1.0))


def _stream_submissions(family: str, n_jobs: int, seed: int):
    """A lazy generator-family workload as a JobSubmission iterator."""
    params = {"mean_gap": 2.0, "tenants": _STREAM_TENANTS}
    if family == "pareto_mix":
        params["size_cap"] = 2.0
    else:
        params["work_scale"] = 0.25
    stream = make_stream(family, n_jobs=n_jobs, seed=seed, **params)
    return (
        JobSubmission(
            label=spec.label,
            job=spec.build_job(),
            submit_time=spec.submit_time,
            image=MODEL_ZOO[spec.model_key].image,
            tenant=spec.tenant,
            weight=spec.weight,
            priority=spec.priority,
            retry_budget=spec.retry_budget,
        )
        for spec in stream
    )


def _tracked_state(manager, recorders) -> int:
    """Retained bookkeeping that must stay O(live), never O(completed).

    Everything here is state a *dense* run grows per job and a streaming
    run must forget: placement records (popped on exit), the runtime's
    container table (reaped on exit), the pool's arrival/finish journals
    (compacted on exit), recorder traces (never created) and the
    sampler/tracker windows (forgotten on exit).  The admission queue is
    deliberately excluded — a backlog is *live* work, not bookkeeping.
    """
    state = len(manager.placements)
    for worker in manager.workers:
        state += len(worker.runtime._containers)
        state += len(worker.pool._arrivals) + len(worker.pool._finishes)
    for recorder in recorders:
        state += len(recorder.traces)
        state += len(recorder._sampler._last_sample)
        state += len(recorder._tracker._histories)
    return state


def _run_streaming_checked(
    seed: int,
    placement: str,
    rebalance,
    admission="wfq",
    autoscale=None,
    failures=None,
    fabric=None,
    fleet_mode=False,
    family="diurnal",
    n_jobs=24,
    shape=None,
) -> tuple[dict[str, str], int]:
    """Streaming twin of ``_run_checked``: lazy stream in, sketches out.

    Feeds a generator-family stream through ``submit_stream`` with a
    shared :class:`StreamMetrics` sink and streaming recorders on every
    worker (provisioned ones included), asserts the same conservation
    invariants as the dense harness plus the streaming-specific ones
    (nothing retained for completed jobs), and returns a digest of every
    sketch-backed aggregate together with the *peak* tracked-state count
    observed after any event — the bounded-memory witness.
    """
    if shape is None:
        capacities, slots, _ = _random_shape(seed)
    else:
        capacities, slots = shape
    sim = Simulator(seed=seed, trace=False)
    workers = [
        Worker(
            sim,
            name=f"w{i}",
            capacity=cap,
            contention=ContentionModel.ideal(),
            max_containers=n,
        )
        for i, (cap, n) in enumerate(zip(capacities, slots))
    ]

    def factory(name):
        return Worker(
            sim,
            name=name,
            capacity=1.0,
            contention=ContentionModel.ideal(),
            max_containers=2,
        )

    sink = StreamMetrics()
    manager = Manager(
        sim,
        workers,
        placement=placement,
        rebalance=rebalance,
        admission=admission,
        autoscale=autoscale,
        failures=failures,
        fabric=fabric,
        worker_factory=factory,
        stream_sink=sink,
    )
    finished: list[tuple[str, float]] = []

    def record(c):
        finished.append((c.name, c.finished_at))

    for worker in workers:
        worker.exit_hooks.append(record)
    manager.provision_hooks.append(lambda w: w.exit_hooks.append(record))
    if fleet_mode:
        FleetTicker(sim).arm()
    recorders: list[MetricsRecorder] = []

    def instrument(w):
        recorder = MetricsRecorder(
            w, sample_interval=5.0, streaming=True, sink=sink
        )
        recorder.start()
        recorders.append(recorder)

    for worker in workers:
        instrument(worker)
    manager.provision_hooks.append(instrument)
    manager.submit_stream(_stream_submissions(family, n_jobs, seed))

    def check_slots(event):
        for worker in manager.workers:
            occupied = len(worker.running_containers()) + worker.reserved
            assert worker.max_containers is None or (
                occupied <= worker.max_containers
            ), f"{worker.name} over capacity after {event!r}"

    def live_slots():
        return sum(w.max_containers or 16 for w in manager.workers)

    peak = _tracked_state(manager, recorders)
    peak_slots = live_slots()
    while sink.n_completed + len(manager.failed) < n_jobs:
        event = sim.step()
        if event is None:
            break
        check_slots(event)
        peak = max(peak, _tracked_state(manager, recorders))
        peak_slots = max(peak_slots, live_slots())
    for recorder in recorders:
        recorder.stop()
    while True:
        event = sim.step()
        if event is None:
            break
        check_slots(event)
        peak = max(peak, _tracked_state(manager, recorders))
        peak_slots = max(peak_slots, live_slots())

    # Exactly-once completion, streamed: every generated label lands in
    # the exit hooks once — or in manager.failed, never both.
    names = [name for name, _ in finished]
    assert len(names) == len(set(names))
    expected = {f"Job-{i}" for i in range(1, n_jobs + 1)}
    assert set(names) == expected - set(manager.failed)
    assert not set(manager.failed) & set(names)
    assert sink.n_completed == len(names)
    assert sink.n_placed >= sink.n_completed
    # Queue drained, nothing in flight — same as the dense harness.
    assert manager.queue_len == 0
    assert manager.pending == 0
    assert manager.in_flight == 0
    assert manager.provisions_pending == 0
    assert all(w.reserved == 0 for w in manager.workers)
    assert all(not w.running_containers() for w in manager.workers)
    # Streaming forgets: no placement record for any completed job, no
    # container left in any runtime table, no per-container traces.
    assert not set(manager.placements) & set(names)
    assert all(not w.runtime._containers for w in manager.workers)
    assert all(not r.traces for r in recorders)
    if failures is None and autoscale is None and rebalance == "none":
        # Without crash/migration/retire churn every container exits on
        # the worker that launched it, so the sampler/tracker forgets
        # must have drained completely.  (A migrated-away container
        # leaves one stale window float on its *source* sampler — O(1)
        # per migration, same as dense mode — so churny runs rely on
        # the peak witness instead.)
        assert all(not r._sampler._last_sample for r in recorders)
        assert all(not r._tracker._histories for r in recorders)
    times = [t for t, _ in manager.fleet_timeline]
    assert times == sorted(times)
    assert manager.fleet_timeline[-1][1] == len(manager.workers)

    result = {name: repr(t) for name, t in finished}
    result["n_completed"] = repr(sink.n_completed)
    result["n_placed"] = repr(sink.n_placed)
    result["total_queue_delay"] = repr(sink.total_queue_delay)
    result["max_queue_delay"] = repr(sink.max_queue_delay)
    result["queue_sketch"] = repr(sink.queue_sketch.state())
    result["completion_sketch"] = repr(sink.completion_sketch.state())
    result["peak_throughput"] = repr(sink.throughput.peak)
    if sink.n_completed:
        result["makespan"] = repr(sink.makespan)
    for tenant in sorted(sink.tenant_queues):
        count, total, sketch = sink.tenant_queues[tenant]
        result[f"tenant:{tenant}"] = repr((count, total, sketch.state()))
    for label, (used, lost) in manager.failed.items():
        result[f"failed:{label}"] = repr((used, lost))
    for label, used in manager.retries.items():
        result[f"retries:{label}"] = repr(used)
    for key, value in sorted(manager.fabric.stats().items()):
        result[f"fabric:{key}"] = repr(value)
    return result, {"peak": peak, "peak_slots": peak_slots}


class TestStreamingMatrixInvariants:
    """Streaming generators × streaming metrics, fuzzed (satellite c).

    Every test drives a lazy ``make_stream`` workload through
    ``submit_stream`` with sketch-backed metrics and sweeps the same
    five policy axes as the dense harness — asserting conservation,
    bit-identical repeats (sketch states included) and that completed
    jobs leave no bookkeeping behind.
    """

    @pytest.mark.parametrize("family", sorted(STREAM_FAMILIES))
    @pytest.mark.parametrize("placement", sorted(PLACEMENTS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_family_placement_matrix(self, family, placement, seed):
        first, _ = _run_streaming_checked(
            seed, placement, "none", family=family
        )
        second, _ = _run_streaming_checked(
            seed, placement, "none", family=family
        )
        assert first == second

    @pytest.mark.parametrize("admission", sorted(ADMISSIONS))
    @pytest.mark.parametrize("rebalance", ["none", "progress"])
    @pytest.mark.parametrize("seed", [2])
    def test_admission_rebalance_axes(self, admission, rebalance, seed):
        first, _ = _run_streaming_checked(
            seed, "spread", rebalance,
            admission=admission, family="flash_crowd",
        )
        second, _ = _run_streaming_checked(
            seed, "spread", rebalance,
            admission=admission, family="flash_crowd",
        )
        assert first == second

    @pytest.mark.parametrize(
        "failures", ["random", "random:checkpoint", "rolling"]
    )
    @pytest.mark.parametrize("seed", [0, 3])
    def test_chaos_axis(self, failures, seed):
        """Crash/recover churn against a lazy stream: jobs that exhaust
        their retry budget land in ``failed``; everything else still
        completes exactly once and the sketches stay deterministic."""
        first, _ = _run_streaming_checked(
            seed, "spread", "none", failures=failures, family="pareto_mix"
        )
        second, _ = _run_streaming_checked(
            seed, "spread", "none", failures=failures, family="pareto_mix"
        )
        assert first == second

    @pytest.mark.parametrize("seed", [5, 6])
    def test_autoscale_axis(self, seed):
        """Workers born mid-stream get streaming recorders (and exited-
        container reaping) through the provision hooks."""
        def run():
            return _run_streaming_checked(
                seed, "spread", "none",
                autoscale=QueueDepthAutoscale(
                    up_threshold=2, provision_delay=5.0, cooldown=0.0
                ),
                family="poisson",
            )

        assert run()[0] == run()[0]

    @pytest.mark.parametrize("seed", [2, 4])
    def test_fleet_mode_parity(self, seed):
        """The fused tick engine must not perturb a streaming run: the
        sketch states and every exit time match the serial path."""
        serial, _ = _run_streaming_checked(
            seed, "spread", "none", fleet_mode=False
        )
        fused, _ = _run_streaming_checked(
            seed, "spread", "none", fleet_mode=True
        )
        assert serial == fused

    @pytest.mark.parametrize(
        "fabric",
        [
            "drop(0.2)",
            "delay(exp,0.3)+duplicate(0.5):retry(max=6,base=0.2)",
            "partition(20..60):retry(max=8,base=0.5)",
        ],
    )
    @pytest.mark.parametrize("seed", [1, 4])
    def test_fabric_axis(self, fabric, seed):
        """Message faults against a lazy stream: exactly-once-or-failed
        accounting holds, sketches stay deterministic, and completed
        jobs still leave no bookkeeping behind."""
        first, _ = _run_streaming_checked(
            seed, "spread", "none", fabric=fabric, family="poisson"
        )
        second, _ = _run_streaming_checked(
            seed, "spread", "none", fabric=fabric, family="poisson"
        )
        assert first == second

    @pytest.mark.parametrize("seed", [3])
    def test_composed_axes(self, seed):
        """Migration + autoscale + chaos + sjf, all on one lazy stream."""
        def run():
            return _run_streaming_checked(
                seed, "binpack", MigrateOnExit(migration_delay=3.0),
                admission="sjf",
                autoscale=QueueDepthAutoscale(
                    up_threshold=2, provision_delay=5.0, cooldown=0.0
                ),
                failures="random:checkpoint(20)",
                family="diurnal",
            )

        assert run()[0] == run()[0]


class TestStreamingBoundedMemory:
    """The bounded-memory witness: peak tracked state is a function of
    the cluster's live capacity, not of how many jobs have streamed by.
    """

    _SHAPE = ([1.0, 1.0, 0.5, 0.5], [2, 2, 2, 2])

    @pytest.mark.parametrize("family", sorted(STREAM_FAMILIES))
    def test_peak_state_independent_of_run_length(self, family):
        """Tripling the stream must not grow the peak tracked state.

        On a fixed 4-worker × 2-slot cluster at most 8 containers are
        ever live, so placements/runtime/journals/sampler windows are
        all bounded by a shape constant.  A single per-job leak —
        un-reaped exited containers, un-compacted journals, per-job
        placement records — would grow the peak linearly with the
        stream and trip the slack immediately.
        """
        _, small = _run_streaming_checked(
            0, "spread", "none", family=family, n_jobs=30,
            shape=self._SHAPE,
        )
        _, large = _run_streaming_checked(
            0, "spread", "none", family=family, n_jobs=90,
            shape=self._SHAPE,
        )
        assert large["peak"] <= small["peak"] + 8, (
            f"peak tracked state grew from {small['peak']} to "
            f"{large['peak']} for a 3x longer {family} stream: "
            "per-job state is leaking"
        )

    def test_peak_state_bounded_under_chaos(self):
        """Crash churn must not leak per-job state either: the crash
        plan is O(workers) (each initial worker crashes at most once),
        so its residue is a shape constant, not a stream length."""
        kw = dict(
            admission="wfq",
            failures="random:checkpoint",
            family="poisson",
            shape=self._SHAPE,
        )
        _, small = _run_streaming_checked(1, "spread", "none", n_jobs=30, **kw)
        _, large = _run_streaming_checked(1, "spread", "none", n_jobs=90, **kw)
        assert large["peak"] <= small["peak"] + 8

    def test_peak_state_proportional_to_fleet_under_autoscale(self):
        """With an autoscaler the fleet itself grows with backlog, so
        the right witness is *capacity*-proportionality: peak tracked
        state stays within a fixed factor of the peak live slot count,
        at both stream lengths.  A per-job leak breaks the factor on
        the long run regardless of how far the fleet scaled."""
        def run(n_jobs):
            return _run_streaming_checked(
                1, "spread", "none", n_jobs=n_jobs,
                admission="wfq",
                autoscale=QueueDepthAutoscale(
                    up_threshold=2, provision_delay=5.0, cooldown=0.0
                ),
                family="poisson",
                shape=self._SHAPE,
            )[1]

        small, large = run(30), run(90)
        for witness in (small, large):
            assert witness["peak"] <= 6 * witness["peak_slots"], witness


def test_wfq_light_tenant_not_starved_by_flood():
    """A continuously backlogged heavy tenant cannot starve a light one.

    Bounded wait, witnessed concretely: the light tenant's lone job is
    placed before the heavy tenant's backlog is halfway drained.
    """
    sim = Simulator(seed=0, trace=False)
    worker = Worker(
        sim, name="w0", contention=ContentionModel.ideal(), max_containers=1
    )
    manager = Manager(sim, [worker], admission="wfq")
    subs = [
        JobSubmission(
            label=f"H-{i}",
            job=make_linear_job(f"H-{i}", 20.0),
            submit_time=float(i) * 0.1,
            tenant="heavy",
            weight=1.0,
        )
        for i in range(1, 21)
    ]
    subs.append(
        JobSubmission(
            label="light",
            job=make_linear_job("light", 20.0),
            submit_time=3.0,
            tenant="light",
            weight=1.0,
        )
    )
    manager.submit_all(subs)
    sim.run_until_empty()
    placed = sorted(manager.placements.values(), key=lambda p: p.placed_time)
    position = [p.label for p in placed].index("light")
    assert position < len(subs) // 2
    assert manager.queue_len == 0


def test_registries_are_fully_covered():
    """The grids above really sweep every registered policy."""
    assert sorted(PLACEMENTS) == [
        "affinity", "binpack", "progress", "random", "spread",
    ]
    assert sorted(REBALANCERS) == ["migrate", "none", "progress"]
    assert sorted(ADMISSIONS) == [
        "backfill", "fifo", "priority", "sjf", "wfq",
    ]
    assert sorted(AUTOSCALERS) == ["none", "progress", "queue_depth"]
    assert sorted(FAILURES) == [
        "az_outage", "none", "random", "rolling", "slow",
    ]
    assert sorted(FABRICS) == ["faulty", "ideal"]
    assert sorted(NETWORK_FAULTS) == [
        "delay", "drop", "duplicate", "gray_link", "partition",
    ]
