"""Invariant/fuzz harness for the cluster scheduling layer.

Example-based tests pin known shapes; this harness sweeps *seeded
random* cluster shapes — 1–8 workers, mixed capacities, bounded and
unbounded admission slots — through every placement × rebalance policy
combination and asserts the conservation invariants that must hold for
any of them:

* every submitted job completes **exactly once**, wherever migrations
  took it;
* no worker ever exceeds its admission slots (in-flight migration
  reservations included), checked after *every* simulation event;
* the FIFO admission queue fully drains;
* repeating a run with the same seed is bit-identical.

Shapes are drawn from a ``numpy`` generator seeded independently of the
simulator, so the same test seed always fuzzes the same cluster.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.contention import ContentionModel
from repro.cluster.manager import Manager
from repro.cluster.placement import PLACEMENTS
from repro.cluster.rebalance import (
    REBALANCERS,
    MigrateOnExit,
    ProgressAwareRebalance,
)
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job

_CAPACITY_POOL = [0.25, 0.5, 1.0]


def _random_shape(seed: int):
    """Cluster + workload shape for one fuzz case (pure function of seed)."""
    rng = np.random.default_rng(seed)
    n_workers = int(rng.integers(1, 9))
    capacities = [float(rng.choice(_CAPACITY_POOL)) for _ in range(n_workers)]
    slots = [
        int(rng.integers(1, 5)) if rng.random() < 0.5 else None
        for _ in range(n_workers)
    ]
    n_jobs = int(rng.integers(6, 13))
    jobs = [
        (
            f"Job-{i}",
            float(rng.uniform(10.0, 80.0)),   # total work
            float(rng.uniform(0.5, 1.0)),     # demand ceiling
            float(rng.uniform(0.0, 60.0)),    # submit time
        )
        for i in range(1, n_jobs + 1)
    ]
    return capacities, slots, jobs


def _run_checked(seed: int, placement: str, rebalance) -> dict[str, str]:
    """Run one fuzz case, asserting invariants; return label → repr(t_f)."""
    capacities, slots, jobs = _random_shape(seed)
    sim = Simulator(seed=seed, trace=False)
    workers = [
        Worker(
            sim,
            name=f"w{i}",
            capacity=cap,
            contention=ContentionModel.ideal(),
            max_containers=n,
        )
        for i, (cap, n) in enumerate(zip(capacities, slots))
    ]
    manager = Manager(sim, workers, placement=placement, rebalance=rebalance)
    finished: list[tuple[str, float]] = []
    for worker in workers:
        worker.exit_hooks.append(
            lambda c: finished.append((c.name, c.finished_at))
        )
    manager.submit_all(
        [
            JobSubmission(
                label=label,
                job=make_linear_job(label, work, demand=demand),
                submit_time=t,
            )
            for label, work, demand, t in jobs
        ]
    )
    while True:
        event = sim.step()
        if event is None:
            break
        for worker in workers:
            occupied = len(worker.running_containers()) + worker.reserved
            assert worker.max_containers is None or (
                occupied <= worker.max_containers
            ), f"{worker.name} over capacity after {event!r}"

    # Exactly-once completion, wherever migrations took each job.
    labels = sorted(name for name, _ in finished)
    assert labels == sorted(label for label, *_ in jobs)
    # The FIFO queue fully drained and nothing is still in flight.
    assert manager.queue_len == 0
    assert manager.pending == 0
    assert manager.in_flight == 0
    assert all(w.reserved == 0 for w in workers)
    assert all(not w.running_containers() for w in workers)
    # Every placed job's record points at a real worker.
    names = {w.name for w in workers}
    for label, *_ in jobs:
        assert manager.placement_of(label).worker_name in names
    return {name: repr(t) for name, t in finished}


@pytest.mark.parametrize("placement", sorted(PLACEMENTS))
@pytest.mark.parametrize("rebalance", sorted(REBALANCERS))
@pytest.mark.parametrize("seed", [0, 1])
def test_conservation_invariants(placement, rebalance, seed):
    """Invariants hold and repeat runs are bit-identical, for every
    placement × rebalance combination on random cluster shapes."""
    first = _run_checked(seed, placement, rebalance)
    second = _run_checked(seed, placement, rebalance)
    assert first == second


@pytest.mark.parametrize("seed", [2, 3, 4])
@pytest.mark.parametrize(
    "factory",
    [
        lambda: MigrateOnExit(migration_delay=3.0),
        lambda: ProgressAwareRebalance(migration_delay=3.0),
    ],
    ids=["migrate-delayed", "progress-delayed"],
)
def test_invariants_with_in_flight_migrations(seed, factory):
    """Checkpoint/restore delay keeps every invariant intact."""
    first = _run_checked(seed, "spread", factory())
    second = _run_checked(seed, "spread", factory())
    assert first == second


def test_registries_are_fully_covered():
    """The grids above really sweep every registered policy."""
    assert sorted(PLACEMENTS) == [
        "affinity", "binpack", "progress", "random", "spread",
    ]
    assert sorted(REBALANCERS) == ["migrate", "none", "progress"]
