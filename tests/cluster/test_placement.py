"""Unit tests for the pluggable placement policies."""

from __future__ import annotations

import pytest

from repro.cluster.contention import ContentionModel
from repro.cluster.manager import Manager
from repro.cluster.placement import (
    PLACEMENTS,
    AffinityPlacement,
    BinPackPlacement,
    ProgressPlacement,
    RandomPlacement,
    SpreadPlacement,
    make_placement,
)
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.errors import ClusterError
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job


def _submission(label, t, work=200.0, image="repro/dl-job"):
    return JobSubmission(
        label=label,
        job=make_linear_job(label, work),
        submit_time=t,
        image=image,
    )


def _cluster(n=3, seed=0, placement=None, max_containers=None):
    sim = Simulator(seed=seed, trace=False)
    workers = [
        Worker(
            sim,
            name=f"w{i}",
            contention=ContentionModel.ideal(),
            max_containers=max_containers,
        )
        for i in range(n)
    ]
    return sim, workers, Manager(sim, workers, placement=placement)


def _worker_of(manager, label):
    return manager.placement_of(label).worker_name


class TestRegistry:
    def test_names_resolve(self):
        for name, cls in PLACEMENTS.items():
            policy = make_placement(name)
            assert isinstance(policy, cls)
            assert policy.name == name

    def test_none_is_spread(self):
        assert isinstance(make_placement(None), SpreadPlacement)

    def test_instance_passes_through(self):
        policy = BinPackPlacement()
        assert make_placement(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ClusterError):
            make_placement("zigzag")


class TestSpread:
    def test_round_robins_idle_cluster(self):
        sim, _, manager = _cluster(n=3)
        manager.submit_all([_submission(f"Job-{i}", 0.0) for i in range(1, 7)])
        sim.run(until=1.0)
        names = [_worker_of(manager, f"Job-{i}") for i in range(1, 7)]
        assert sorted(names) == ["w0", "w0", "w1", "w1", "w2", "w2"]

    def test_is_default(self):
        _, _, manager = _cluster()
        assert isinstance(manager.placement, SpreadPlacement)


class TestBinPack:
    def test_consolidates_onto_busiest(self):
        sim, _, manager = _cluster(n=3, placement="binpack")
        manager.submit_all([_submission(f"Job-{i}", 0.0) for i in range(1, 5)])
        sim.run(until=1.0)
        names = {_worker_of(manager, f"Job-{i}") for i in range(1, 5)}
        assert names == {"w0"}

    def test_spills_when_slots_fill(self):
        sim, _, manager = _cluster(n=3, placement="binpack", max_containers=2)
        manager.submit_all([_submission(f"Job-{i}", 0.0) for i in range(1, 5)])
        sim.run(until=1.0)
        names = [_worker_of(manager, f"Job-{i}") for i in range(1, 5)]
        assert sorted(names) == ["w0", "w0", "w1", "w1"]


class TestRandom:
    def test_deterministic_under_fixed_seed(self):
        def placements(seed):
            sim, _, manager = _cluster(n=4, seed=seed, placement="random")
            manager.submit_all(
                [_submission(f"Job-{i}", 0.0) for i in range(1, 13)]
            )
            sim.run(until=1.0)
            return [_worker_of(manager, f"Job-{i}") for i in range(1, 13)]

        assert placements(3) == placements(3)

    def test_seed_changes_decisions(self):
        def placements(seed):
            sim, _, manager = _cluster(n=4, seed=seed, placement="random")
            manager.submit_all(
                [_submission(f"Job-{i}", 0.0) for i in range(1, 13)]
            )
            sim.run(until=1.0)
            return [_worker_of(manager, f"Job-{i}") for i in range(1, 13)]

        assert placements(0) != placements(1)

    def test_unbound_policy_rejected(self):
        policy = RandomPlacement()
        with pytest.raises(ClusterError):
            policy.select([], _submission("Job-1", 0.0))


class TestAffinity:
    def test_colocates_same_image(self):
        sim, _, manager = _cluster(n=3, placement="affinity")
        manager.submit_all(
            [
                _submission("Job-1", 0.0, image="repro/mnist:tf"),
                _submission("Job-2", 1.0, image="repro/vae:pt"),
                _submission("Job-3", 2.0, image="repro/mnist:tf"),
            ]
        )
        sim.run(until=5.0)
        assert _worker_of(manager, "Job-3") == _worker_of(manager, "Job-1")
        assert _worker_of(manager, "Job-2") != _worker_of(manager, "Job-1")

    def test_falls_back_to_spread_without_affinity(self):
        sim, _, manager = _cluster(n=2, placement="affinity")
        manager.submit_all(
            [
                _submission("Job-1", 0.0, image="repro/a"),
                _submission("Job-2", 1.0, image="repro/b"),
            ]
        )
        sim.run(until=5.0)
        assert _worker_of(manager, "Job-1") != _worker_of(manager, "Job-2")

    def test_instance_selection(self):
        # select() sees only eligible workers; affinity among them.
        sim = Simulator(seed=0, trace=False)
        workers = [
            Worker(sim, name=f"w{i}", contention=ContentionModel.ideal())
            for i in range(2)
        ]
        workers[1].launch(make_linear_job("other", 100.0), image="repro/x")
        chosen = AffinityPlacement().select(
            workers, _submission("Job-1", 0.0, image="repro/x")
        )
        assert chosen.name == "w1"


class TestProgress:
    def test_unbound_policy_rejected(self):
        with pytest.raises(ClusterError):
            ProgressPlacement().select([], _submission("Job-1", 0.0))

    def test_prefers_lowest_aggregate_progress(self):
        """New jobs land where existing jobs improve the least."""
        sim = Simulator(seed=0, trace=False)
        fast = Worker(sim, name="wfast", contention=ContentionModel.ideal())
        slow = Worker(sim, name="wslow", contention=ContentionModel.ideal())
        # E falls 1→0 over total_work CPU-seconds: "quick" improves 100×
        # faster per second than the near-converged "crawl".
        fast.launch(make_linear_job("quick", total_work=50.0))
        slow.launch(make_linear_job("crawl", total_work=5000.0))
        policy = ProgressPlacement()
        policy.bind(sim)
        # Two spaced observations build the per-container rates.
        sim.run(until=10.0)
        policy.select([fast, slow], _submission("probe-1", 0.0))
        sim.run(until=20.0)
        chosen = policy.select([fast, slow], _submission("probe-2", 0.0))
        assert chosen.name == "wslow"

    def test_no_signal_falls_back_to_spread(self):
        sim, _, manager = _cluster(n=3, placement="progress")
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0) for i in range(1, 4)]
        )
        sim.run(until=1.0)
        assert {
            _worker_of(manager, f"Job-{i}") for i in range(1, 4)
        } == {"w0", "w1", "w2"}

    def test_deterministic_under_fixed_seed(self):
        def placements(seed):
            sim, _, manager = _cluster(n=3, seed=seed, placement="progress")
            manager.submit_all(
                [_submission(f"Job-{i}", 20.0 * i) for i in range(1, 9)]
            )
            sim.run_until_empty()
            return [_worker_of(manager, f"Job-{i}") for i in range(1, 9)]

        assert placements(5) == placements(5)
