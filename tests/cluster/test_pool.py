"""Unit tests for the container pool."""

from __future__ import annotations

import pytest

from repro.cluster.pool import ContainerPool
from repro.containers.container import Container
from repro.errors import UnknownContainerError
from tests.conftest import make_linear_job


def _container(name="c"):
    c = Container(make_linear_job(), name=name)
    c.start(0.0)
    return c


class TestMembership:
    def test_add_and_count(self):
        pool = ContainerPool()
        pool.add(_container(), 1.0)
        pool.add(_container(), 2.0)
        assert pool.count() == 2

    def test_discard_removes(self):
        pool = ContainerPool()
        c = _container()
        pool.add(c, 1.0)
        removed = pool.discard(c.cid, 5.0)
        assert removed is c
        assert pool.count() == 0
        assert c.cid not in pool

    def test_discard_unknown_raises(self):
        with pytest.raises(UnknownContainerError):
            ContainerPool().discard(12345, 0.0)

    def test_get(self):
        pool = ContainerPool()
        c = _container()
        pool.add(c, 0.0)
        assert pool.get(c.cid) is c
        with pytest.raises(UnknownContainerError):
            pool.get(999999)

    def test_members_sorted_by_cid(self):
        pool = ContainerPool()
        a, b = _container("a"), _container("b")
        pool.add(b, 0.0)
        pool.add(a, 0.0)
        assert [c.cid for c in pool.members()] == sorted([a.cid, b.cid])


class TestDeltas:
    def test_delta_detects_arrivals(self):
        pool = ContainerPool()
        before = pool.cids()
        c = _container()
        pool.add(c, 1.0)
        delta = pool.delta_since(before)
        assert delta.count_change == 1
        assert delta.added == (c.cid,)
        assert delta.removed == ()

    def test_delta_detects_finishes(self):
        pool = ContainerPool()
        c = _container()
        pool.add(c, 0.0)
        before = pool.cids()
        pool.discard(c.cid, 2.0)
        delta = pool.delta_since(before)
        assert delta.count_change == -1
        assert delta.removed == (c.cid,)

    def test_delta_mixed(self):
        pool = ContainerPool()
        a = _container("a")
        pool.add(a, 0.0)
        before = pool.cids()
        b = _container("b")
        pool.add(b, 1.0)
        pool.discard(a.cid, 1.0)
        delta = pool.delta_since(before)
        assert delta.count_change == 0
        assert delta.added == (b.cid,)
        assert delta.removed == (a.cid,)


class TestJournals:
    def test_arrivals_since(self):
        pool = ContainerPool()
        a, b = _container(), _container()
        pool.add(a, 1.0)
        pool.add(b, 5.0)
        assert pool.arrivals_since(1.0) == [b.cid]
        assert pool.arrivals_since(0.0) == [a.cid, b.cid]

    def test_finishes_since(self):
        pool = ContainerPool()
        a = _container()
        pool.add(a, 0.0)
        pool.discard(a.cid, 3.0)
        assert pool.finishes_since(2.0) == [a.cid]
        assert pool.finishes_since(3.0) == []

    def test_totals(self):
        pool = ContainerPool()
        a, b = _container(), _container()
        pool.add(a, 0.0)
        pool.add(b, 0.0)
        pool.discard(a.cid, 1.0)
        assert pool.total_arrivals() == 2
        assert pool.total_finishes() == 1
