"""Failure injection, durable checkpoints and retry budgets.

Covers the fifth policy axis end-to-end: spec parsing and the
:class:`~repro.errors.UnknownPolicyError` contract shared by all five
axes, deterministic fault plans, crash → re-queue → resume semantics
under both durability models, retry-budget exhaustion accounting,
fail-slow degradation, crash-during-in-flight-migration (the stranded
container must become an orphan, not a leak), and recovery through the
full ``run_cluster`` stack with both policies.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.na import NAPolicy
from repro.cluster.admission import make_admission
from repro.cluster.autoscale import make_autoscale
from repro.cluster.contention import ContentionModel
from repro.cluster.failures import (
    DURABILITIES,
    FAILURES,
    AzOutage,
    CheckpointDurability,
    LostDurability,
    NoFailures,
    RandomFailures,
    RollingRestart,
    ScriptedFailures,
    SlowNode,
    WorkerFault,
    make_durability,
    make_failures,
)
from repro.cluster.manager import Manager
from repro.cluster.placement import make_placement
from repro.cluster.rebalance import MigrateOnExit, Migration, make_rebalance
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.config import FlowConConfig, SimulationConfig
from repro.core.policy import FlowConPolicy
from repro.errors import ClusterError, ConfigError, UnknownPolicyError
from repro.experiments.runner import run_cluster
from repro.metrics.recorder import MetricsRecorder
from repro.simcore.engine import Simulator
from repro.workloads.generator import WorkloadGenerator
from tests.conftest import make_linear_job


def _worker(sim, name, capacity=1.0, max_containers=None):
    return Worker(
        sim,
        name=name,
        capacity=capacity,
        contention=ContentionModel.ideal(),
        max_containers=max_containers,
    )


def _sub(label, work, t=0.0, demand=1.0, retry_budget=3):
    return JobSubmission(
        label=label,
        job=make_linear_job(label, work, demand=demand),
        submit_time=t,
        retry_budget=retry_budget,
    )


# ---------------------------------------------------------------------------
# WorkerFault validation
# ---------------------------------------------------------------------------


class TestWorkerFault:
    def test_valid_crash_and_slow(self):
        WorkerFault(worker="w0", time=5.0)
        WorkerFault(worker="w0", time=5.0, recover_after=10.0)
        WorkerFault(worker="w0", time=5.0, kind="slow", capacity_factor=0.5)

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError):
            WorkerFault(worker="w0", time=5.0, kind="explode")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            WorkerFault(worker="w0", time=-1.0)

    def test_nonpositive_recovery_rejected(self):
        with pytest.raises(ConfigError):
            WorkerFault(worker="w0", time=1.0, recover_after=0.0)

    def test_slow_needs_fractional_capacity(self):
        with pytest.raises(ConfigError):
            WorkerFault(worker="w0", time=1.0, kind="slow",
                        capacity_factor=1.0)


# ---------------------------------------------------------------------------
# Spec parsing (durability + failures grammar)
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_none_means_lost(self):
        assert isinstance(make_durability(None), LostDurability)

    def test_instance_passthrough(self):
        model = CheckpointDurability(interval=7.0)
        assert make_durability(model) is model
        injector = RollingRestart()
        assert make_failures(injector) is injector

    def test_checkpoint_interval_argument(self):
        model = make_durability("checkpoint(60)")
        assert isinstance(model, CheckpointDurability)
        assert model.interval == 60.0
        assert model.describe() == "checkpoint(60s)"

    def test_lost_takes_no_argument(self):
        with pytest.raises(ConfigError):
            make_durability("lost(5)")

    def test_checkpoint_interval_must_be_numeric(self):
        with pytest.raises(ConfigError):
            make_durability("checkpoint(soon)")

    def test_checkpoint_interval_must_be_positive(self):
        with pytest.raises(ConfigError):
            CheckpointDurability(interval=0.0)

    def test_failures_spec_with_durability_suffix(self):
        injector = make_failures("rolling:checkpoint(60)")
        assert isinstance(injector, RollingRestart)
        assert isinstance(injector.durability, CheckpointDurability)
        assert injector.durability.interval == 60.0
        assert injector.describe() == "rolling+checkpoint(60s)"

    def test_bare_name_defaults_to_lost(self):
        injector = make_failures("az_outage")
        assert isinstance(injector, AzOutage)
        assert isinstance(injector.durability, LostDurability)

    def test_none_spec_takes_no_durability(self):
        assert isinstance(make_failures("none"), NoFailures)
        assert isinstance(make_failures(None), NoFailures)
        with pytest.raises(ConfigError):
            make_failures("none:lost")


# ---------------------------------------------------------------------------
# Unknown policy names: one error contract across all five axes
# ---------------------------------------------------------------------------


class TestUnknownPolicyNames:
    """Every axis raises UnknownPolicyError (a ValueError) that lists
    its registry keys — no axis fails with a bare KeyError."""

    @pytest.mark.parametrize(
        "resolver, registry_keys",
        [
            (make_placement,
             ["affinity", "binpack", "progress", "random", "spread"]),
            (make_rebalance, ["migrate", "none", "progress"]),
            (make_admission, ["backfill", "fifo", "priority", "sjf", "wfq"]),
            (make_autoscale, ["none", "progress", "queue_depth"]),
            (make_failures,
             ["az_outage", "none", "random", "rolling", "slow"]),
            (make_durability, ["checkpoint", "lost"]),
        ],
        ids=["placement", "rebalance", "admission", "autoscale",
             "failures", "durability"],
    )
    def test_unknown_name_lists_registry(self, resolver, registry_keys):
        with pytest.raises(UnknownPolicyError) as exc_info:
            resolver("definitely-not-a-policy")
        message = str(exc_info.value)
        for key in registry_keys:
            assert f"'{key}'" in message

    def test_unknown_policy_error_is_a_value_error(self):
        # Callers holding only builtin exception types (argparse-style
        # CLIs, config loaders) can catch ValueError; existing callers
        # catching ClusterError keep working.
        assert issubclass(UnknownPolicyError, ValueError)
        assert issubclass(UnknownPolicyError, ClusterError)
        for resolver in (make_placement, make_rebalance, make_admission,
                         make_autoscale, make_failures, make_durability):
            with pytest.raises(ValueError):
                resolver("definitely-not-a-policy")

    def test_config_validates_failures_spec(self):
        with pytest.raises(ConfigError):
            SimulationConfig(failures="definitely-not-a-policy")
        with pytest.raises(ConfigError):
            SimulationConfig(failures="rolling:checkpoint(soon)")


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------


def _manager(sim, n_workers=3, failures=None, **kwargs):
    workers = [_worker(sim, f"w{i}") for i in range(n_workers)]
    return Manager(sim, workers, failures=failures, **kwargs)


class TestFaultPlans:
    def test_random_plan_is_deterministic_per_seed(self):
        def draw(seed):
            sim = Simulator(seed=seed, trace=False)
            manager = _manager(sim)
            return RandomFailures(p_crash=0.8).plan(sim, manager)

        assert draw(3) == draw(3)
        assert any(draw(a) != draw(b) for a, b in [(0, 1), (1, 2), (2, 3)])

    def test_random_never_kills_whole_fleet_permanently(self):
        for seed in range(10):
            sim = Simulator(seed=seed, trace=False)
            manager = _manager(sim)
            plan = RandomFailures(p_crash=1.0, p_recover=0.0).plan(
                sim, manager
            )
            assert len(plan) == 3
            assert any(f.recover_after is not None for f in plan)

    def test_rolling_covers_every_worker_in_sequence(self):
        sim = Simulator(seed=0, trace=False)
        manager = _manager(sim, n_workers=4)
        plan = RollingRestart(start=60.0, interval=90.0).plan(sim, manager)
        assert [f.worker for f in plan] == ["w0", "w1", "w2", "w3"]
        assert [f.time for f in plan] == [60.0, 150.0, 240.0, 330.0]
        assert all(f.recover_after == 30.0 for f in plan)

    def test_az_outage_hits_fraction_simultaneously(self):
        sim = Simulator(seed=0, trace=False)
        manager = _manager(sim, n_workers=5)
        plan = AzOutage(at=100.0, fraction=0.5, outage=50.0).plan(
            sim, manager
        )
        assert [f.worker for f in plan] == ["w0", "w1", "w2"]
        assert all(f.time == 100.0 and f.recover_after == 50.0 for f in plan)

    def test_slow_node_picks_one_victim(self):
        sim = Simulator(seed=0, trace=False)
        manager = _manager(sim, n_workers=4)
        plan = SlowNode(at=30.0, factor=0.25).plan(sim, manager)
        assert len(plan) == 1
        assert plan[0].kind == "slow"
        assert plan[0].capacity_factor == 0.25


# ---------------------------------------------------------------------------
# Crash → re-queue → resume semantics
# ---------------------------------------------------------------------------


def _run_with_crash(durability, *, crash_at=20.0, recover_after=15.0,
                    work=60.0, retry_budget=3):
    """One job on one of two workers; its worker crashes mid-run."""
    sim = Simulator(seed=0, trace=False)
    workers = [_worker(sim, "w0"), _worker(sim, "w1")]
    injector = ScriptedFailures(
        [WorkerFault(worker="w0", time=crash_at, recover_after=recover_after)],
        durability=durability,
    )
    manager = Manager(sim, workers, placement="binpack", failures=injector)
    finished = {}
    for w in workers:
        w.exit_hooks.append(lambda c: finished.__setitem__(c.name, sim.now))
    manager.submit(_sub("J0", work, retry_budget=retry_budget))
    sim.run_until_empty()
    return sim, manager, finished


class TestCrashRecovery:
    def test_lost_durability_restarts_from_zero(self):
        sim, manager, finished = _run_with_crash("lost", crash_at=20.0,
                                                 work=60.0)
        # 20s of progress evaporates: restart at 20 on the surviving
        # worker (binpack places on w0 first, orphan re-queues to w1)
        # and run the full 60s again.
        assert finished == {"J0": pytest.approx(80.0)}
        assert manager.retries == {"J0": 1}
        assert manager.lost_work["J0"] == pytest.approx(20.0)
        assert manager.failed == {}
        assert manager.crashed_workers == {"w0"}

    def test_checkpoint_durability_resumes_from_snapshot(self):
        # interval 10 ⇒ snapshots at t=10, 20, ...; the crash at t=25
        # rolls J0 back to the t=20 snapshot (20s of work), losing 5s,
        # and pays the footprint restore delay (0.1 RAM × 40 = 4s).
        sim, manager, finished = _run_with_crash(
            "checkpoint(10)", crash_at=25.0, work=60.0
        )
        assert manager.retries == {"J0": 1}
        assert manager.lost_work["J0"] == pytest.approx(5.0)
        assert finished["J0"] == pytest.approx(25.0 + 4.0 + 40.0)

    def test_checkpoint_strictly_beats_lost(self):
        _, _, lost = _run_with_crash("lost", crash_at=25.0, work=60.0)
        _, _, ckpt = _run_with_crash("checkpoint(10)", crash_at=25.0,
                                     work=60.0)
        assert ckpt["J0"] < lost["J0"]

    def test_checkpoint_table_prunes_completed_containers(self):
        sim, manager, _ = _run_with_crash("checkpoint(10)", crash_at=25.0)
        model = manager.failures.durability
        assert isinstance(model, CheckpointDurability)
        # Drained run: the snapshot loop self-terminated and pruned
        # every departed container, so the table is empty.
        assert model._checkpoints == {}

    def test_retry_budget_exhaustion_fails_exactly_once(self):
        sim, manager, finished = _run_with_crash(
            "lost", crash_at=20.0, retry_budget=0
        )
        assert finished == {}
        assert manager.retries == {}
        assert "J0" in manager.failed
        used, lost = manager.failed["J0"]
        assert used == 0
        assert lost == pytest.approx(20.0)
        # Nothing leaks even though the job never completed.
        assert manager.pending == 0
        assert manager.queue_len == 0
        assert manager.in_flight == 0

    def test_recovered_worker_accepts_new_work(self):
        sim = Simulator(seed=0, trace=False)
        workers = [_worker(sim, "w0", max_containers=1)]
        injector = ScriptedFailures(
            [WorkerFault(worker="w0", time=10.0, recover_after=5.0)],
            durability="lost",
        )
        manager = Manager(sim, workers, failures=injector)
        finished = {}
        workers[0].exit_hooks.append(
            lambda c: finished.__setitem__(c.name, sim.now)
        )
        manager.submit(_sub("J0", 30.0))
        sim.run_until_empty()
        # Crash at 10 (10s lost), rejoin at 15, full 30s re-run.
        assert finished == {"J0": pytest.approx(45.0)}
        assert [w.name for w in manager.workers] == ["w0"]

    def test_fault_against_departed_worker_is_dropped(self):
        sim = Simulator(seed=0, trace=False)
        workers = [_worker(sim, "w0"), _worker(sim, "w1")]
        injector = ScriptedFailures(
            [
                WorkerFault(worker="w0", time=10.0),
                WorkerFault(worker="w0", time=20.0),  # already dead
                WorkerFault(worker="ghost", time=30.0),  # never existed
            ],
            durability="lost",
        )
        manager = Manager(sim, workers, failures=injector)
        manager.submit(_sub("J0", 5.0))
        sim.run_until_empty()
        assert manager.crashed_workers == {"w0"}
        assert [w.name for w in manager.workers] == ["w1"]

    def test_retry_budget_validation(self):
        with pytest.raises(ValueError):
            _sub("J0", 10.0, retry_budget=-1)


# ---------------------------------------------------------------------------
# Fail-slow degradation
# ---------------------------------------------------------------------------


class TestFailSlow:
    def test_capacity_degrades_and_recovers(self):
        sim = Simulator(seed=0, trace=False)
        workers = [_worker(sim, "w0")]
        injector = ScriptedFailures(
            [WorkerFault(worker="w0", time=10.0, kind="slow",
                         capacity_factor=0.25, recover_after=20.0)],
        )
        manager = Manager(sim, workers, failures=injector)
        finished = {}
        workers[0].exit_hooks.append(
            lambda c: finished.__setitem__(c.name, sim.now)
        )
        manager.submit(_sub("J0", 40.0))
        sim.run_until_empty()
        # 10s at 1.0 + 20s at 0.25 (5 work) + 25s at 1.0 ⇒ t=55.
        assert finished == {"J0": pytest.approx(55.0)}
        assert workers[0].capacity == 1.0
        # No containers were orphaned: fail-slow is not a crash.
        assert manager.retries == {}
        assert manager.crashed_workers == set()

    def test_permanent_degradation_sticks(self):
        sim = Simulator(seed=0, trace=False)
        workers = [_worker(sim, "w0")]
        injector = ScriptedFailures(
            [WorkerFault(worker="w0", time=10.0, kind="slow",
                         capacity_factor=0.5, recover_after=None)],
        )
        manager = Manager(sim, workers, failures=injector)
        manager.submit(_sub("J0", 20.0))
        sim.run_until_empty()
        assert workers[0].capacity == 0.5


# ---------------------------------------------------------------------------
# Crash during an in-flight migration (regression)
# ---------------------------------------------------------------------------


class TestCrashDuringMigration:
    def test_target_crash_strands_then_requeues_the_container(self):
        """A worker vanishing while a container is migrating *towards*
        it must not leak the container, the reservation, or the
        in-flight count — the traveller becomes an orphan of the crash
        and re-enters through admission like any other victim."""
        sim = Simulator(seed=0, trace=False)
        w0, w1 = _worker(sim, "w0"), _worker(sim, "w1")
        injector = ScriptedFailures([], durability="lost")
        manager = Manager(
            sim,
            [w0, w1],
            placement="binpack",
            rebalance=MigrateOnExit(migration_delay=10.0),
            failures=injector,
        )
        finished = {}
        for w in (w0, w1):
            w.exit_hooks.append(
                lambda c: finished.__setitem__(c.name, sim.now)
            )
        manager.submit(_sub("J0", 50.0))
        sim.run(until=5.0)
        # Launch the move by hand (deterministic timing), then kill the
        # target while the container is still in flight.
        container = w0.running_containers()[0]
        manager._migrate(Migration(container, w0, w1))
        assert manager.in_flight == 1
        assert w1.reserved == 1
        manager.schedule_fault(WorkerFault(worker="w1", time=8.0))
        sim.run_until_empty()
        assert manager.in_flight == 0
        assert manager.crashed_workers == {"w1"}
        assert manager.retries == {"J0": 1}
        # The stranded 5s of progress is lost durability's to lose.
        assert manager.lost_work["J0"] == pytest.approx(5.0)
        # Re-queued at t=8 onto the survivor: full 50s re-run.
        assert finished == {"J0": pytest.approx(58.0)}
        assert all(w.reserved == 0 for w in manager.workers)

    def test_source_crash_after_departure_is_harmless(self):
        """Migrations *from* a node that then dies already left it."""
        sim = Simulator(seed=0, trace=False)
        w0, w1 = _worker(sim, "w0"), _worker(sim, "w1")
        manager = Manager(
            sim,
            [w0, w1],
            placement="binpack",
            rebalance=MigrateOnExit(migration_delay=10.0),
            failures=ScriptedFailures([], durability="lost"),
        )
        finished = {}
        for w in (w0, w1):
            w.exit_hooks.append(
                lambda c: finished.__setitem__(c.name, sim.now)
            )
        manager.submit(_sub("J0", 50.0))
        sim.run(until=5.0)
        container = w0.running_containers()[0]
        manager._migrate(Migration(container, w0, w1))
        manager.schedule_fault(WorkerFault(worker="w0", time=8.0))
        sim.run_until_empty()
        # The traveller arrives at w1 at t=15 unharmed and finishes
        # its remaining 45s of work there.
        assert manager.retries == {}
        assert finished == {"J0": pytest.approx(60.0)}
        assert manager.in_flight == 0


# ---------------------------------------------------------------------------
# The full runner stack
# ---------------------------------------------------------------------------


def _chaos_specs(n=4):
    gen = WorkloadGenerator(np.random.default_rng(7))
    return gen.random_mix(n, window=(0.0, 10.0))


class TestRunClusterRecovery:
    @pytest.mark.parametrize(
        "policy_factory",
        [NAPolicy, lambda: FlowConPolicy(FlowConConfig())],
        ids=["na", "flowcon"],
    )
    def test_crash_recover_completes_all_jobs(self, policy_factory):
        injector = ScriptedFailures(
            [WorkerFault(worker="worker-0", time=30.0, recover_after=20.0)],
            durability="checkpoint(10)",
        )
        result = run_cluster(
            _chaos_specs(),
            policy_factory,
            SimulationConfig(seed=0, trace=False),
            n_workers=2,
            failures=injector,
        )
        assert len(result.summary.completions) == 4
        assert result.summary.failed_jobs == {}
        # The crash actually hit running containers.
        assert result.summary.total_retries() >= 1

    def test_repeat_runs_are_bit_identical(self):
        def run():
            return run_cluster(
                _chaos_specs(),
                NAPolicy,
                SimulationConfig(seed=0, trace=False),
                n_workers=2,
                failures=ScriptedFailures(
                    [WorkerFault(worker="worker-0", time=30.0,
                                 recover_after=20.0)],
                    durability="checkpoint(10)",
                ),
            )

        a, b = run(), run()
        assert a.completion_times() == b.completion_times()
        assert a.summary.retries == b.summary.retries

    def test_explicit_none_matches_default_run(self):
        specs = _chaos_specs()
        cfg = SimulationConfig(seed=0, trace=False)
        default = run_cluster(specs, NAPolicy, cfg, n_workers=2)
        explicit = run_cluster(specs, NAPolicy, cfg, n_workers=2,
                               failures="none")
        assert default.completion_times() == explicit.completion_times()
        assert (default.sim.events_processed
                == explicit.sim.events_processed)

    def test_summary_carries_failure_accounting(self):
        injector = ScriptedFailures(
            [WorkerFault(worker="worker-0", time=30.0)],
            durability="lost",
        )
        gen = WorkloadGenerator(np.random.default_rng(7))
        specs = [
            replace(s, retry_budget=0)
            for s in gen.random_mix(3, window=(0.0, 5.0))
        ]
        result = run_cluster(
            specs,
            NAPolicy,
            SimulationConfig(seed=0, trace=False),
            n_workers=2,
            placement="spread",
            failures=injector,
        )
        summary = result.summary
        failed = summary.failed_labels()
        assert failed  # the crashed worker held jobs with budget 0
        assert len(summary.completions) + len(failed) == 3
        assert not set(summary.completion_times()) & set(failed)
        assert summary.failed_lost_work() > 0.0


class TestRecorderUnderRecovery:
    def test_restart_does_not_double_record(self):
        sim = Simulator(seed=0, trace=False)
        worker = _worker(sim, "w0")
        recorder = MetricsRecorder(worker, sample_interval=5.0)
        recorder.start()
        recorder.stop()
        recorder.start()
        job = make_linear_job("J0", 20.0)
        worker.launch(job, name="J0", image="img")
        # The sampler self-reschedules while started, so run to a
        # horizon past the job's 20s runtime instead of draining.
        sim.run(until=30.0)
        recorder.stop()
        assert len(recorder.completions) == 1
