"""Unit/integration tests for the worker's settlement arithmetic.

Using ``ContentionModel.ideal()`` the dynamics are exact, so completion
times can be asserted analytically.
"""

from __future__ import annotations

import pytest

from repro.cluster.worker import Worker
from repro.containers.allocator import AllocationMode
from repro.cluster.contention import ContentionModel
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job


class TestSoloJob:
    def test_solo_job_finishes_at_exact_time(self, sim, ideal_worker):
        ideal_worker.launch(make_linear_job(total_work=50.0))
        sim.run_until_empty()
        assert sim.now == pytest.approx(50.0)
        assert ideal_worker.pool.count() == 0

    def test_demand_limited_job_takes_longer(self, sim, ideal_worker):
        ideal_worker.launch(make_linear_job(total_work=50.0, demand=0.5))
        sim.run_until_empty()
        assert sim.now == pytest.approx(100.0)

    def test_completion_time_recorded_on_container(self, sim, ideal_worker):
        c = ideal_worker.launch(make_linear_job(total_work=30.0))
        sim.run_until_empty()
        assert c.exited
        assert c.completion_time() == pytest.approx(30.0)


class TestFairSharing:
    def test_two_equal_jobs_split_node(self, sim, ideal_worker):
        ideal_worker.launch(make_linear_job("a", total_work=50.0))
        ideal_worker.launch(make_linear_job("b", total_work=50.0))
        sim.run_until_empty()
        # Each gets 0.5 → both finish at 100.
        assert sim.now == pytest.approx(100.0)

    def test_exit_releases_capacity(self, sim, ideal_worker):
        ca = ideal_worker.launch(make_linear_job("a", total_work=20.0))
        cb = ideal_worker.launch(make_linear_job("b", total_work=50.0))
        sim.run_until_empty()
        # Shared until a exits at t=40 (20/0.5); b then has 30 left at rate 1.
        assert ca.finished_at == pytest.approx(40.0)
        assert cb.finished_at == pytest.approx(70.0)

    def test_staggered_arrival(self, sim, ideal_worker):
        ideal_worker.launch(make_linear_job("a", total_work=100.0))
        sim.schedule(
            30.0,
            lambda e: ideal_worker.launch(make_linear_job("b", total_work=35.0)),
        )
        sim.run_until_empty()
        # a alone 0–30 (30 done), then split: b finishes at 30+70=100;
        # a has 100-30-35=35 left at rate 1 → 135.
        assert sim.now == pytest.approx(135.0)


class TestLimits:
    def test_update_limit_shifts_shares(self, sim, ideal_worker):
        ca = ideal_worker.launch(make_linear_job("a", total_work=100.0))
        cb = ideal_worker.launch(make_linear_job("b", total_work=50.0))
        ideal_worker.update_limit(ca.cid, 0.25)
        sim.run_until_empty()
        # a capped 0.25, b soaks 0.75: b exits at 50/0.75 = 66.67,
        # a then has 100 - 16.67 = 83.33 at rate 1 → 150.
        assert cb.finished_at == pytest.approx(50 / 0.75)
        assert ca.finished_at == pytest.approx(150.0)

    def test_batch_update_applies_once(self, sim, ideal_worker):
        ca = ideal_worker.launch(make_linear_job("a"))
        cb = ideal_worker.launch(make_linear_job("b"))
        changed = ideal_worker.batch_update({ca.cid: 0.3, cb.cid: 0.7})
        assert changed == 2
        allocs = ideal_worker.allocations()
        assert allocs[ca.cid] == pytest.approx(0.3)
        assert allocs[cb.cid] == pytest.approx(0.7)

    def test_hard_mode_leaves_capacity_idle(self):
        sim = Simulator(seed=0)
        worker = Worker(
            sim,
            contention=ContentionModel.ideal(),
            allocation_mode=AllocationMode.HARD,
        )
        c = worker.launch(make_linear_job(total_work=50.0))
        worker.update_limit(c.cid, 0.5)
        sim.run_until_empty()
        assert sim.now == pytest.approx(100.0)  # soft mode would give 50+ε

    def test_soft_mode_single_job_recovers_node(self, sim, ideal_worker):
        c = ideal_worker.launch(make_linear_job(total_work=50.0))
        ideal_worker.update_limit(c.cid, 0.5)
        sim.run_until_empty()
        assert sim.now == pytest.approx(50.0)


class TestAccounting:
    def test_cgroup_tracks_cpu_seconds(self, sim, ideal_worker):
        c = ideal_worker.launch(make_linear_job(total_work=40.0))
        sim.run_until_empty()
        assert c.cgroup.cpu_seconds() == pytest.approx(40.0)

    def test_overhead_slows_completion_but_usage_reflects_alloc(self):
        sim = Simulator(seed=0)
        worker = Worker(
            sim, contention=ContentionModel(overhead=0.10, jitter_free=0.0,
                                            jitter_limited=0.0)
        )
        worker.launch(make_linear_job("a", total_work=50.0))
        worker.launch(make_linear_job("b", total_work=50.0))
        sim.run_until_empty()
        # efficiency = 1/1.1 with 2 jobs; both at 0.5 alloc → rate 0.4545…
        assert sim.now == pytest.approx(100.0 * 1.1)

    def test_load_view(self, sim, ideal_worker):
        ideal_worker.launch(make_linear_job("a"))
        ideal_worker.launch(make_linear_job("b", demand=0.3))
        assert ideal_worker.load() == pytest.approx(1.0)


class TestHooks:
    def test_launch_and_exit_hooks_fire(self, sim, ideal_worker):
        events = []
        ideal_worker.launch_hooks.append(lambda c: events.append(("up", c.name)))
        ideal_worker.exit_hooks.append(lambda c: events.append(("down", c.name)))
        ideal_worker.launch(make_linear_job("x", total_work=10.0))
        sim.run_until_empty()
        assert events == [("up", "x"), ("down", "x")]

    def test_poke_is_idempotent_on_progress(self, sim, ideal_worker):
        c = ideal_worker.launch(make_linear_job(total_work=100.0))
        sim.schedule(10.0, lambda e: ideal_worker.poke())
        sim.schedule(10.0, lambda e: ideal_worker.poke())
        sim.run(until=10.0)
        assert c.job.work_done == pytest.approx(10.0)


class TestValidation:
    def test_nonpositive_capacity_rejected(self, sim):
        from repro.errors import CapacityError

        with pytest.raises(CapacityError):
            Worker(sim, capacity=0.0)
