"""Unit tests for the manager's capacity-aware admission queue."""

from __future__ import annotations

import pytest

from repro.cluster.contention import ContentionModel
from repro.cluster.manager import Manager
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.errors import CapacityError, ClusterError
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job


def _submission(label, t, work=50.0):
    return JobSubmission(
        label=label, job=make_linear_job(label, work), submit_time=t
    )


def _bounded_cluster(n=1, slots=1, seed=0):
    sim = Simulator(seed=seed, trace=False)
    workers = [
        Worker(
            sim,
            name=f"w{i}",
            contention=ContentionModel.ideal(),
            max_containers=slots,
        )
        for i in range(n)
    ]
    return sim, workers, Manager(sim, workers)


class TestWorkerAdmission:
    def test_launch_beyond_slots_raises(self, sim):
        worker = Worker(
            sim, contention=ContentionModel.ideal(), max_containers=1
        )
        worker.launch(make_linear_job("a", 50.0))
        assert not worker.has_headroom()
        with pytest.raises(CapacityError):
            worker.launch(make_linear_job("b", 50.0))

    def test_unbounded_always_has_headroom(self, sim, ideal_worker):
        for i in range(5):
            ideal_worker.launch(make_linear_job(f"j{i}", 50.0))
        assert ideal_worker.has_headroom()

    def test_bad_max_containers_rejected(self, sim):
        with pytest.raises(CapacityError):
            Worker(sim, max_containers=0)


class TestAdmissionQueue:
    def test_no_over_capacity_launch(self):
        sim, workers, manager = _bounded_cluster(n=2, slots=1)
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0) for i in range(1, 6)]
        )
        sim.run(until=1.0)
        assert all(len(w.running_containers()) <= 1 for w in workers)
        assert manager.queue_len == 3
        assert manager.peak_queue_len == 3

    def test_fifo_order(self):
        sim, _, manager = _bounded_cluster(n=1, slots=1)
        # Job-1 runs ~50 s; Job-2..4 arrive while it runs and must be
        # placed strictly in arrival order as slots free up.
        manager.submit_all(
            [
                _submission("Job-1", 0.0),
                _submission("Job-2", 1.0),
                _submission("Job-3", 2.0),
                _submission("Job-4", 3.0),
            ]
        )
        sim.run(until=5.0)
        assert manager.queued_labels() == ["Job-2", "Job-3", "Job-4"]
        sim.run_until_empty()
        placed = sorted(
            manager.placements.values(), key=lambda p: p.placed_time
        )
        assert [p.label for p in placed] == [
            "Job-1", "Job-2", "Job-3", "Job-4",
        ]

    def test_queue_fully_drained(self):
        sim, _, manager = _bounded_cluster(n=2, slots=1)
        manager.submit_all(
            [_submission(f"Job-{i}", float(i)) for i in range(1, 8)]
        )
        sim.run_until_empty()
        assert manager.queue_len == 0
        assert manager.pending == 0
        assert set(manager.placements) == {f"Job-{i}" for i in range(1, 8)}

    def test_queue_delay_recorded(self):
        sim, _, manager = _bounded_cluster(n=1, slots=1)
        manager.submit_all(
            [_submission("Job-1", 0.0), _submission("Job-2", 10.0)]
        )
        sim.run_until_empty()
        assert manager.placement_of("Job-1").queue_delay == 0.0
        p2 = manager.placement_of("Job-2")
        # Job-1 finishes at ~50 s; Job-2 arrived at 10 s and waited.
        assert p2.queue_delay == pytest.approx(p2.placed_time - 10.0)
        assert p2.queue_delay > 30.0
        assert manager.queue_delays["Job-2"] == p2.queue_delay

    def test_unbounded_cluster_never_queues(self):
        sim = Simulator(seed=0, trace=False)
        worker = Worker(sim, contention=ContentionModel.ideal())
        manager = Manager(sim, [worker])
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0) for i in range(1, 10)]
        )
        sim.run(until=1.0)
        assert manager.peak_queue_len == 0
        assert manager.queue_delays == {}


class TestSubmitStateLeak:
    def test_failed_schedule_leaves_label_reusable(self):
        sim = Simulator(seed=0, trace=False)
        worker = Worker(sim, contention=ContentionModel.ideal())
        manager = Manager(sim, [worker])
        sim.run(until=20.0)
        # Submitting in the past fails inside sim.schedule; the label
        # and pending count must not be poisoned by the attempt.
        with pytest.raises(Exception):
            manager.submit(_submission("Job-1", 5.0))
        assert manager.pending == 0
        manager.submit(_submission("Job-1", 25.0))
        assert manager.pending == 1
        sim.run_until_empty()
        assert manager.placement_of("Job-1").cid > 0

    def test_duplicate_label_still_rejected(self):
        sim, _, manager = _bounded_cluster()
        manager.submit(_submission("Job-1", 0.0))
        with pytest.raises(ClusterError):
            manager.submit(_submission("Job-1", 5.0))
