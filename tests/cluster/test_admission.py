"""Unit tests for the manager's capacity-aware admission queue
and the pluggable admission policies (fifo / backfill / priority /
wfq / sjf)."""

from __future__ import annotations

import pytest

from repro.cluster.admission import (
    ADMISSIONS,
    BackfillAdmission,
    FifoAdmission,
    PriorityAdmission,
    SjfAdmission,
    WfqAdmission,
    make_admission,
)
from repro.cluster.contention import ContentionModel
from repro.cluster.manager import Manager
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.containers.spec import ResourceSpec
from repro.errors import CapacityError, ClusterError, ConfigError
from repro.simcore.engine import Simulator
from repro.workloads.curves import PiecewiseLinearCurve
from repro.workloads.evalfn import EvalFunction, EvalKind
from repro.workloads.job import TrainingJob
from tests.conftest import make_linear_job


def _submission(label, t, work=50.0, tenant=None, weight=1.0, priority=0):
    return JobSubmission(
        label=label,
        job=make_linear_job(label, work),
        submit_time=t,
        tenant=tenant,
        weight=weight,
        priority=priority,
    )


def _mem_submission(label, t, memory, work=50.0):
    """A linear job with an explicit memory footprint (for fit probes)."""
    job = TrainingJob(
        name=label,
        total_work=work,
        curve=PiecewiseLinearCurve([(0.0, 1.0), (1.0, 0.0)]),
        evalfn=EvalFunction(
            kind=EvalKind.SQUARED_LOSS, start=1.0, converged=0.0
        ),
        footprint=ResourceSpec(cpu_demand=1.0, memory=memory),
        total_iterations=1000,
    )
    return JobSubmission(label=label, job=job, submit_time=t)


def _bounded_cluster(n=1, slots=1, seed=0, admission=None):
    sim = Simulator(seed=seed, trace=False)
    workers = [
        Worker(
            sim,
            name=f"w{i}",
            contention=ContentionModel.ideal(),
            max_containers=slots,
        )
        for i in range(n)
    ]
    return sim, workers, Manager(sim, workers, admission=admission)


class TestWorkerAdmission:
    def test_launch_beyond_slots_raises(self, sim):
        worker = Worker(
            sim, contention=ContentionModel.ideal(), max_containers=1
        )
        worker.launch(make_linear_job("a", 50.0))
        assert not worker.has_headroom()
        with pytest.raises(CapacityError):
            worker.launch(make_linear_job("b", 50.0))

    def test_unbounded_always_has_headroom(self, sim, ideal_worker):
        for i in range(5):
            ideal_worker.launch(make_linear_job(f"j{i}", 50.0))
        assert ideal_worker.has_headroom()

    def test_bad_max_containers_rejected(self, sim):
        with pytest.raises(CapacityError):
            Worker(sim, max_containers=0)


class TestAdmissionQueue:
    def test_no_over_capacity_launch(self):
        sim, workers, manager = _bounded_cluster(n=2, slots=1)
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0) for i in range(1, 6)]
        )
        sim.run(until=1.0)
        assert all(len(w.running_containers()) <= 1 for w in workers)
        assert manager.queue_len == 3
        assert manager.peak_queue_len == 3

    def test_fifo_order(self):
        sim, _, manager = _bounded_cluster(n=1, slots=1)
        # Job-1 runs ~50 s; Job-2..4 arrive while it runs and must be
        # placed strictly in arrival order as slots free up.
        manager.submit_all(
            [
                _submission("Job-1", 0.0),
                _submission("Job-2", 1.0),
                _submission("Job-3", 2.0),
                _submission("Job-4", 3.0),
            ]
        )
        sim.run(until=5.0)
        assert manager.queued_labels() == ["Job-2", "Job-3", "Job-4"]
        sim.run_until_empty()
        placed = sorted(
            manager.placements.values(), key=lambda p: p.placed_time
        )
        assert [p.label for p in placed] == [
            "Job-1", "Job-2", "Job-3", "Job-4",
        ]

    def test_queue_fully_drained(self):
        sim, _, manager = _bounded_cluster(n=2, slots=1)
        manager.submit_all(
            [_submission(f"Job-{i}", float(i)) for i in range(1, 8)]
        )
        sim.run_until_empty()
        assert manager.queue_len == 0
        assert manager.pending == 0
        assert set(manager.placements) == {f"Job-{i}" for i in range(1, 8)}

    def test_queue_delay_recorded(self):
        sim, _, manager = _bounded_cluster(n=1, slots=1)
        manager.submit_all(
            [_submission("Job-1", 0.0), _submission("Job-2", 10.0)]
        )
        sim.run_until_empty()
        assert manager.placement_of("Job-1").queue_delay == 0.0
        p2 = manager.placement_of("Job-2")
        # Job-1 finishes at ~50 s; Job-2 arrived at 10 s and waited.
        assert p2.queue_delay == pytest.approx(p2.placed_time - 10.0)
        assert p2.queue_delay > 30.0
        assert manager.queue_delays["Job-2"] == p2.queue_delay

    def test_unbounded_cluster_never_queues(self):
        sim = Simulator(seed=0, trace=False)
        worker = Worker(sim, contention=ContentionModel.ideal())
        manager = Manager(sim, [worker])
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0) for i in range(1, 10)]
        )
        sim.run(until=1.0)
        assert manager.peak_queue_len == 0
        assert manager.queue_delays == {}


class TestAdmissionPolicies:
    """Pure drain-order semantics of the four registry policies."""

    def _drain(self, policy, submissions):
        for sub in submissions:
            policy.push(sub)
        return [policy.pop().label for _ in range(len(submissions))]

    def test_registry_names(self):
        assert sorted(ADMISSIONS) == [
            "backfill", "fifo", "priority", "sjf", "wfq",
        ]

    def test_make_admission_defaults_to_fifo(self):
        assert isinstance(make_admission(None), FifoAdmission)

    def test_make_admission_rejects_unknown(self):
        with pytest.raises(ClusterError):
            make_admission("lifo")

    def test_make_admission_passes_instance_through(self):
        policy = WfqAdmission(tenant_weights={"a": 2.0})
        assert make_admission(policy) is policy

    def test_tenant_weights_require_wfq(self):
        with pytest.raises(ClusterError):
            make_admission("fifo", tenant_weights={"a": 1.0})
        with pytest.raises(ClusterError):
            make_admission(FifoAdmission(), tenant_weights={"a": 1.0})
        policy = make_admission("wfq", tenant_weights={"a": 3.0})
        assert isinstance(policy, WfqAdmission)
        assert policy.tenant_weights == {"a": 3.0}

    def test_bad_tenant_weight_rejected(self):
        with pytest.raises(ConfigError):
            WfqAdmission(tenant_weights={"a": 0.0})

    def test_pop_on_empty_raises(self):
        for name in ADMISSIONS:
            with pytest.raises(ClusterError):
                make_admission(name).pop()

    def test_fifo_is_arrival_order(self):
        subs = [_submission(f"J{i}", float(i)) for i in range(5)]
        assert self._drain(FifoAdmission(), subs) == [
            "J0", "J1", "J2", "J3", "J4",
        ]

    def test_priority_classes_with_fifo_tiebreak(self):
        subs = [
            _submission("low-1", 0.0, priority=0),
            _submission("high-1", 1.0, priority=5),
            _submission("low-2", 2.0, priority=0),
            _submission("high-2", 3.0, priority=5),
        ]
        assert self._drain(PriorityAdmission(), subs) == [
            "high-1", "high-2", "low-1", "low-2",
        ]

    def test_priority_zero_everywhere_is_fifo(self):
        subs = [_submission(f"J{i}", float(i)) for i in range(6)]
        assert self._drain(PriorityAdmission(), subs) == self._drain(
            FifoAdmission(),
            [_submission(f"J{i}", float(i)) for i in range(6)],
        )

    def test_sjf_orders_by_remaining_work(self):
        subs = [
            _submission("big", 0.0, work=90.0),
            _submission("small", 1.0, work=10.0),
            _submission("mid", 2.0, work=50.0),
        ]
        assert self._drain(SjfAdmission(), subs) == ["small", "mid", "big"]

    def test_sjf_equal_work_keeps_fifo(self):
        subs = [_submission(f"J{i}", float(i), work=42.0) for i in range(4)]
        assert self._drain(SjfAdmission(), subs) == ["J0", "J1", "J2", "J3"]

    def test_wfq_drains_tenants_proportionally(self):
        """Weight 2 vs 1: tenant A gets two releases per B release."""
        policy = WfqAdmission()
        subs = [
            _submission(f"A{i}", float(i), tenant="A", weight=2.0)
            for i in range(4)
        ] + [
            _submission(f"B{i}", float(i), tenant="B", weight=1.0)
            for i in range(4)
        ]
        order = self._drain(policy, subs)
        # Finish tags: A: 0.5, 1.0, 1.5, 2.0; B: 1.0, 2.0, 3.0, 4.0.
        assert order == ["A0", "A1", "B0", "A2", "A3", "B1", "B2", "B3"]

    def test_wfq_policy_weights_override_submission_weights(self):
        policy = WfqAdmission(tenant_weights={"A": 1.0, "B": 3.0})
        subs = [
            _submission(f"A{i}", float(i), tenant="A", weight=100.0)
            for i in range(3)
        ] + [
            _submission(f"B{i}", float(i), tenant="B", weight=0.01)
            for i in range(3)
        ]
        order = self._drain(policy, subs)
        # B's override weight 3 beats A's ignored submission weight.
        assert order[0] == "B0"
        assert order.index("B2") < order.index("A1")

    def test_wfq_no_banked_credit_for_idle_tenants(self):
        """A tenant arriving late starts at the current virtual time."""
        policy = WfqAdmission()
        for i in range(4):
            policy.push(_submission(f"A{i}", float(i), tenant="A"))
        for _ in range(4):
            policy.pop()  # virtual time advances to 4.0
        policy.push(_submission("B0", 10.0, tenant="B"))
        policy.push(_submission("A4", 11.0, tenant="A"))
        # B starts at vtime (4.0), not at 0 — it cannot leapfrog A by
        # the full backlog it slept through.
        assert [policy.pop().label for _ in range(2)] == ["B0", "A4"]

    def test_wfq_bounded_wait_under_flood(self):
        """One light-tenant job outdrains an ever-growing heavy backlog."""
        policy = WfqAdmission()
        for i in range(50):
            policy.push(_submission(f"H{i}", float(i), tenant="heavy"))
        policy.push(_submission("L0", 50.0, tenant="light", weight=1.0))
        drained, seen = 0, None
        while len(policy):
            label = policy.pop().label
            drained += 1
            if label == "L0":
                seen = drained
                break
        # Finish tags grow 1.0 per heavy job; the light job's tag is
        # pinned at push time, so it drains within one round.
        assert seen is not None and seen <= 2

    def test_queued_preview_matches_drain_order(self):
        for name in ADMISSIONS:
            policy = make_admission(name)
            subs = [
                _submission("slow", 0.0, work=80.0, priority=1),
                _submission("fast", 1.0, work=10.0, tenant="t", weight=2.0),
                _submission("mid", 2.0, work=40.0),
            ]
            for sub in subs:
                policy.push(sub)
            preview = [s.label for s in policy.queued()]
            assert preview == [policy.pop().label for _ in range(3)]

    def test_queued_work_sums_remaining(self):
        policy = FifoAdmission()
        policy.push(_submission("a", 0.0, work=30.0))
        policy.push(_submission("b", 0.0, work=20.0))
        assert policy.queued_work() == pytest.approx(50.0)

    def test_default_pop_fitting_ignores_probe(self):
        """Non-fit-aware policies release unconditionally — the probe is
        advisory, preserving bit-identical historical drains."""
        for name in ("fifo", "priority"):
            policy = make_admission(name)
            policy.push(_submission("only", 0.0))
            released = policy.pop_fitting(lambda sub: False)
            assert released is not None and released.label == "only"


class TestFitAwareHeapAdmission:
    """wfq/sjf compose key order with the backfill memory-fit probe."""

    def _fits_by_label(self, *labels):
        allowed = set(labels)
        return lambda sub: sub.label in allowed

    def test_sjf_backfills_next_shortest_fitting(self):
        policy = make_admission("sjf")
        policy.push(_submission("short", 0.0, work=10.0))
        policy.push(_submission("mid", 0.0, work=20.0))
        policy.push(_submission("long", 0.0, work=30.0))
        fits = self._fits_by_label("mid", "long")
        # Shortest fails the probe → next-shortest fitting releases.
        assert policy.pop_fitting(fits).label == "mid"
        assert policy.backfills == 1
        # Key order is preserved among the remaining jobs.
        assert [s.label for s in policy.queued()] == ["short", "long"]

    def test_sjf_fitting_head_is_plain_key_order(self):
        policy = make_admission("sjf")
        for label, work in (("b", 20.0), ("a", 10.0), ("c", 30.0)):
            policy.push(_submission(label, 0.0, work=work))
        order = [
            policy.pop_fitting(lambda sub: True).label for _ in range(3)
        ]
        assert order == ["a", "b", "c"]
        assert policy.backfills == 0

    def test_sjf_aging_suspends_backfill(self):
        policy = make_admission("sjf")
        policy.max_skips = 2
        policy.push(_submission("head", 0.0, work=1.0))
        fits = self._fits_by_label("f1", "f2", "f3")
        for label in ("f1", "f2", "f3"):
            policy.push(_submission(label, 0.0, work=50.0))
        assert policy.pop_fitting(fits).label == "f1"
        assert policy.pop_fitting(fits).label == "f2"
        # Skip budget exhausted: nothing releases until the head fits.
        assert policy.pop_fitting(fits) is None
        released = policy.pop_fitting(self._fits_by_label("head", "f3"))
        assert released.label == "head"
        # Head released → budget reset → backfill resumes.
        assert policy.pop_fitting(fits).label == "f3"

    def test_sjf_nothing_fits_returns_none(self):
        policy = make_admission("sjf")
        policy.push(_submission("a", 0.0))
        assert policy.pop_fitting(lambda sub: False) is None
        assert len(policy) == 1
        assert make_admission("sjf").pop_fitting(lambda sub: True) is None

    def test_wfq_backfill_advances_virtual_time(self):
        """An out-of-order release moves vtime to its finish tag, the
        same rule as an in-order pop."""
        policy = make_admission("wfq")
        policy.push(_submission("h1", 0.0, tenant="heavy"))
        policy.push(_submission("h2", 0.0, tenant="heavy"))
        policy.push(_submission("lite", 0.0, tenant="light", weight=0.25))
        # Heavy head doesn't fit; the light job (largest finish tag,
        # 1/0.25 = 4.0) is the only fitting entry.
        assert policy.pop_fitting(
            self._fits_by_label("lite")
        ).label == "lite"
        assert policy.backfills == 1
        assert policy._vtime == pytest.approx(4.0)
        # A tenant arriving after the backfill starts from the advanced
        # vtime, not from zero.
        policy.push(_submission("late", 1.0, tenant="newcomer"))
        entries = sorted(policy._heap)
        tags = {entry[-1].label: entry[0] for entry in entries}
        assert tags["late"] == pytest.approx(5.0)

    def test_wfq_head_fit_pops_in_key_order(self):
        policy = make_admission("wfq")
        policy.push(_submission("h1", 0.0, tenant="heavy"))
        policy.push(_submission("l1", 0.0, tenant="light", weight=2.0))
        assert policy.pop_fitting(lambda sub: True).label == "l1"
        assert policy.backfills == 0


class TestBackfillAdmission:
    """Fit-aware FIFO: small jobs flow around a stuck head, boundedly."""

    def _fits_by_label(self, *labels):
        allowed = set(labels)
        return lambda sub: sub.label in allowed

    def test_fitting_head_is_plain_fifo(self):
        policy = BackfillAdmission()
        for i in range(4):
            policy.push(_submission(f"J{i}", float(i)))
        order = [
            policy.pop_fitting(lambda sub: True).label for _ in range(4)
        ]
        assert order == ["J0", "J1", "J2", "J3"]
        assert policy.backfills == 0

    def test_backfills_earliest_fitting_job(self):
        policy = BackfillAdmission()
        for label in ("big", "mid", "small-1", "small-2"):
            policy.push(_submission(label, 0.0))
        fits = self._fits_by_label("small-1", "small-2")
        assert policy.pop_fitting(fits).label == "small-1"
        assert policy.pop_fitting(fits).label == "small-2"
        assert policy.backfills == 2
        assert [s.label for s in policy.queued()] == ["big", "mid"]

    def test_nothing_fits_returns_none(self):
        policy = BackfillAdmission()
        policy.push(_submission("a", 0.0))
        policy.push(_submission("b", 1.0))
        assert policy.pop_fitting(lambda sub: False) is None
        assert len(policy) == 2

    def test_empty_queue_returns_none(self):
        assert BackfillAdmission().pop_fitting(lambda sub: True) is None

    def test_aging_suspends_backfill(self):
        """After max_skips jumps the head blocks the queue: fitting jobs
        wait behind it instead of starving it."""
        policy = BackfillAdmission(max_skips=2)
        policy.push(_submission("head", 0.0))
        fits = self._fits_by_label("f1", "f2", "f3")
        for label in ("f1", "f2", "f3"):
            policy.push(_submission(label, 1.0))
        assert policy.pop_fitting(fits).label == "f1"
        assert policy.pop_fitting(fits).label == "f2"
        # Budget exhausted: f3 fits but must not jump the head again.
        assert policy.pop_fitting(fits) is None
        assert policy.backfills == 2
        # Once the head fits, it drains first and the budget resets.
        fits_all = lambda sub: True  # noqa: E731
        assert policy.pop_fitting(fits_all).label == "head"
        assert policy.pop_fitting(fits_all).label == "f3"

    def test_skip_budget_belongs_to_the_head(self):
        """A released head resets the budget for its successor."""
        policy = BackfillAdmission(max_skips=1)
        for label in ("h1", "h2", "fit-1", "fit-2"):
            policy.push(_submission(label, 0.0))
        fits = self._fits_by_label("fit-1", "fit-2")
        assert policy.pop_fitting(fits).label == "fit-1"  # skip h1
        assert policy.pop_fitting(fits) is None  # h1's budget is spent
        fits_h1 = self._fits_by_label("h1", "fit-2")
        assert policy.pop_fitting(fits_h1).label == "h1"
        # h2 is the new head with a fresh budget of 1.
        assert policy.pop_fitting(fits).label == "fit-2"

    def test_max_skips_zero_is_strict_fifo(self):
        policy = BackfillAdmission(max_skips=0)
        policy.push(_submission("head", 0.0))
        policy.push(_submission("fit", 1.0))
        assert policy.pop_fitting(self._fits_by_label("fit")) is None

    def test_bad_max_skips_rejected(self):
        with pytest.raises(ConfigError):
            BackfillAdmission(max_skips=-1)

    def test_describe_names_the_bound(self):
        assert BackfillAdmission(max_skips=4).describe() == (
            "backfill (max_skips=4)"
        )

    def test_manager_backfills_around_memory_pressure(self):
        """End to end: a small job jumps a head that would overcommit
        the only worker with a free slot, and the head still completes."""
        sim = Simulator(seed=0, trace=False)
        worker = Worker(
            sim,
            name="w0",
            contention=ContentionModel.ideal(),
            max_containers=2,
        )
        policy = BackfillAdmission()
        manager = Manager(sim, [worker], admission=policy)
        manager.submit_all([
            _mem_submission("A-long", 0.0, memory=0.5, work=100.0),
            _mem_submission("B-short", 0.0, memory=0.4, work=30.0),
            # Queued behind a full node; C overcommits next to A, D fits.
            _mem_submission("C-big", 1.0, memory=0.6, work=20.0),
            _mem_submission("D-small", 2.0, memory=0.05, work=20.0),
        ])
        sim.run_until_empty()
        assert policy.backfills == 1
        placed = sorted(
            manager.placements.values(), key=lambda p: p.placed_time
        )
        order = [p.label for p in placed]
        assert order[:2] == ["A-long", "B-short"]
        # D backfilled past C when B's exit freed a slot next to A...
        assert order.index("D-small") < order.index("C-big")
        # ...and C was not starved: every job ran to completion.
        assert set(manager.placements) == {
            "A-long", "B-short", "C-big", "D-small",
        }

    def test_manager_max_skips_zero_blocks_drain(self):
        """The aging knob at 0 degrades backfill to strict FIFO waiting."""
        sim = Simulator(seed=0, trace=False)
        worker = Worker(
            sim,
            name="w0",
            contention=ContentionModel.ideal(),
            max_containers=2,
        )
        manager = Manager(
            sim, [worker], admission=BackfillAdmission(max_skips=0)
        )
        manager.submit_all([
            _mem_submission("A-long", 0.0, memory=0.5, work=100.0),
            _mem_submission("B-short", 0.0, memory=0.4, work=30.0),
            _mem_submission("C-big", 1.0, memory=0.6, work=20.0),
            _mem_submission("D-small", 2.0, memory=0.05, work=20.0),
        ])
        sim.run_until_empty()
        placed = sorted(
            manager.placements.values(), key=lambda p: p.placed_time
        )
        order = [p.label for p in placed]
        # No jumping: C waits for A to exit, D waits behind C.
        assert order.index("C-big") < order.index("D-small")


class TestManagerWithAdmissionPolicies:
    """The policies drive real drain decisions through the manager."""

    def _run(self, admission, submissions, n=1, slots=1):
        sim, _, manager = _bounded_cluster(n=n, slots=slots, admission=admission)
        manager.submit_all(submissions)
        sim.run_until_empty()
        placed = sorted(
            manager.placements.values(), key=lambda p: (p.placed_time, p.label)
        )
        return manager, [p.label for p in placed]

    def test_priority_jumps_the_queue(self):
        subs = [
            _submission("running", 0.0),
            _submission("low", 1.0, priority=0),
            _submission("high", 2.0, priority=9),
        ]
        _, order = self._run("priority", subs)
        assert order == ["running", "high", "low"]

    def test_sjf_prefers_short_jobs(self):
        subs = [
            _submission("running", 0.0),
            _submission("long", 1.0, work=80.0),
            _submission("short", 2.0, work=10.0),
        ]
        _, order = self._run("sjf", subs)
        assert order == ["running", "short", "long"]

    def test_wfq_interleaves_tenants(self):
        subs = [_submission("running", 0.0)] + [
            _submission(f"H{i}", 1.0 + i / 10, tenant="heavy", weight=1.0)
            for i in range(4)
        ] + [
            _submission("L0", 2.0, tenant="light", weight=4.0),
        ]
        manager, order = self._run("wfq", subs)
        # The light tenant's single job drains well before the heavy
        # tenant's backlog is done.
        assert order.index("L0") <= 2
        assert manager.tenants["L0"] == "light"

    def test_fifo_name_matches_historical_behaviour(self):
        subs = [_submission(f"Job-{i}", float(i)) for i in range(1, 6)]
        _, explicit = self._run("fifo", subs)
        subs2 = [_submission(f"Job-{i}", float(i)) for i in range(1, 6)]
        _, default = self._run(None, subs2)
        assert explicit == default

    def test_tenant_map_only_tracks_declared_tenants(self):
        sim, _, manager = _bounded_cluster()
        manager.submit_all(
            [
                _submission("anon", 0.0),
                _submission("owned", 1.0, tenant="team-a"),
            ]
        )
        sim.run_until_empty()
        assert manager.tenants == {"owned": "team-a"}


class TestSubmitStateLeak:
    def test_failed_schedule_leaves_label_reusable(self):
        sim = Simulator(seed=0, trace=False)
        worker = Worker(sim, contention=ContentionModel.ideal())
        manager = Manager(sim, [worker])
        sim.run(until=20.0)
        # Submitting in the past fails inside sim.schedule; the label
        # and pending count must not be poisoned by the attempt.
        with pytest.raises(Exception):
            manager.submit(_submission("Job-1", 5.0))
        assert manager.pending == 0
        manager.submit(_submission("Job-1", 25.0))
        assert manager.pending == 1
        sim.run_until_empty()
        assert manager.placement_of("Job-1").cid > 0

    def test_duplicate_label_still_rejected(self):
        sim, _, manager = _bounded_cluster()
        manager.submit(_submission("Job-1", 0.0))
        with pytest.raises(ClusterError):
            manager.submit(_submission("Job-1", 5.0))


class TestDescribe:
    def test_policy_descriptions(self):
        assert FifoAdmission().describe() == "fifo"
        assert PriorityAdmission().describe() == "priority"
        assert SjfAdmission().describe() == "sjf"
        assert WfqAdmission().describe() == "wfq (weights from submissions)"
        assert (
            WfqAdmission(tenant_weights={"b": 1.0, "a": 2.5}).describe()
            == "wfq (a=2.5, b=1)"
        )

    def test_submission_validation(self):
        with pytest.raises(ValueError):
            _submission("bad", 0.0, weight=0.0)
        with pytest.raises(ValueError):
            _submission("bad", -1.0)
