"""Unit tests for the memory-pressure extension."""

from __future__ import annotations

import pytest

from repro.cluster.contention import ContentionModel
from repro.cluster.worker import Worker
from repro.errors import ConfigError
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job


def _job(mem: float, work: float = 50.0, name: str = "j"):
    from repro.containers.spec import ResourceSpec
    from repro.workloads.curves import PiecewiseLinearCurve
    from repro.workloads.evalfn import EvalFunction, EvalKind
    from repro.workloads.job import TrainingJob

    return TrainingJob(
        name=name,
        total_work=work,
        curve=PiecewiseLinearCurve([(0.0, 1.0), (1.0, 0.0)]),
        evalfn=EvalFunction(kind=EvalKind.SQUARED_LOSS, start=1.0, converged=0.0),
        footprint=ResourceSpec(cpu_demand=1.0, memory=mem),
    )


class TestEfficiencyWithMemory:
    def test_no_penalty_below_capacity(self):
        model = ContentionModel(overhead=0.0, swap_penalty=0.5)
        assert model.efficiency(2, mem_used=0.9) == 1.0

    def test_penalty_above_capacity(self):
        model = ContentionModel(overhead=0.0, swap_penalty=0.5)
        assert model.efficiency(2, mem_used=1.4) == pytest.approx(1 / 1.2)

    def test_disabled_by_default(self):
        model = ContentionModel(overhead=0.0)
        assert model.efficiency(2, mem_used=2.0) == 1.0

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigError):
            ContentionModel(swap_penalty=-0.1)

    def test_penalties_compose(self):
        model = ContentionModel(overhead=0.10, swap_penalty=0.5)
        eff = model.efficiency(2, mem_used=1.4)
        assert eff == pytest.approx(1.0 / 1.1 / 1.2)


class TestWorkerMemoryAccounting:
    def test_memory_used_sums_running_footprints(self):
        sim = Simulator(seed=0)
        worker = Worker(sim, contention=ContentionModel.ideal())
        worker.launch(_job(0.4, name="a"))
        worker.launch(_job(0.3, name="b"))
        assert worker.memory_used() == pytest.approx(0.7)

    def test_memory_released_on_exit(self):
        sim = Simulator(seed=0)
        worker = Worker(sim, contention=ContentionModel.ideal())
        worker.launch(_job(0.4, work=10.0, name="a"))
        worker.launch(_job(0.3, work=100.0, name="b"))
        sim.run(until=30.0)
        assert worker.memory_used() == pytest.approx(0.3)

    def test_overcommit_slows_training(self):
        def run(mem_per_job: float) -> float:
            sim = Simulator(seed=0)
            worker = Worker(
                sim,
                contention=ContentionModel(
                    overhead=0.0, jitter_free=0.0, jitter_limited=0.0,
                    swap_penalty=0.5,
                ),
            )
            worker.launch(_job(mem_per_job, work=50.0, name="a"))
            worker.launch(_job(mem_per_job, work=50.0, name="b"))
            return sim.run_until_empty()

        fits = run(0.4)      # 0.8 total — fits in RAM
        thrashes = run(0.8)  # 1.6 total — 0.6 overcommit
        assert fits == pytest.approx(100.0)
        assert thrashes == pytest.approx(100.0 * 1.3)  # 1 + 0.5·0.6
