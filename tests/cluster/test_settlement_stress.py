"""Settlement-invariant stress tests for the vectorized worker hot path.

The invariant under test: no pattern of pokes, batch updates, stale exit
projections or starvation may change *how much* work is delivered — only
allocations integrated over time do.  These tests hammer the reallocation
machinery (which now reschedules exits incrementally and settles through
numpy) and assert the analytic outcomes the scalar implementation
guaranteed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.contention import ContentionModel
from repro.cluster.worker import Worker
from repro.containers.spec import ResourceSpec
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job


class TestPokeStorms:
    def test_many_pokes_do_not_change_progress(self, sim, ideal_worker):
        job = make_linear_job(total_work=100.0)
        c = ideal_worker.launch(job)
        for t in np.linspace(0.5, 49.5, 99):
            sim.schedule(float(t), lambda e: ideal_worker.poke())
        sim.run(until=50.0)
        ideal_worker.poke()  # settle the final half-interval at t=50
        assert c.job.work_done == pytest.approx(50.0)
        assert c.cgroup.cpu_seconds() == pytest.approx(50.0)

    def test_poke_storm_preserves_completion_time(self):
        # Identical worlds; one run is poked relentlessly, one never.
        def build(poked: bool) -> float:
            sim = Simulator(seed=3, trace=False)
            worker = Worker(sim, contention=ContentionModel.ideal())
            worker.launch(make_linear_job("a", total_work=60.0))
            worker.launch(make_linear_job("b", total_work=30.0))
            if poked:
                for t in np.linspace(1.0, 59.0, 59):
                    sim.schedule(float(t), lambda e: worker.poke())
            sim.run_until_empty()
            return sim.now

        assert build(True) == pytest.approx(build(False))

    def test_same_instant_pokes_are_idempotent(self, sim, ideal_worker):
        c = ideal_worker.launch(make_linear_job(total_work=100.0))
        for _ in range(10):
            sim.schedule(10.0, lambda e: ideal_worker.poke())
        sim.run(until=10.0)
        assert c.job.work_done == pytest.approx(10.0)


class TestRapidReallocation:
    def test_alternating_batch_updates_conserve_work(self, sim, ideal_worker):
        ca = ideal_worker.launch(make_linear_job("a", total_work=50.0))
        cb = ideal_worker.launch(make_linear_job("b", total_work=50.0))

        def flip(event):
            t = event.time
            hi, lo = (0.75, 0.25) if int(t) % 2 == 0 else (0.25, 0.75)
            if ca.running and cb.running:
                ideal_worker.batch_update({ca.cid: hi, cb.cid: lo})

        for t in range(1, 100):
            sim.schedule(float(t), flip)
        sim.run_until_empty()
        # Work is conserved: the node runs at full capacity until the
        # first exit, so 100 total CPU-seconds are delivered by t=100.
        total = ca.cgroup.cpu_seconds() + cb.cgroup.cpu_seconds()
        assert total == pytest.approx(100.0, rel=1e-9)
        assert ca.exited and cb.exited

    def test_exit_projection_kept_when_unchanged(self, sim, ideal_worker):
        """Incremental rescheduling: a no-op poke keeps the exit event."""
        c = ideal_worker.launch(make_linear_job(total_work=64.0))
        handle_before = ideal_worker._exit_handles[c.cid]
        sim.schedule(16.0, lambda e: ideal_worker.poke())
        sim.run(until=16.0)
        # Ideal contention + power-of-two numbers: the recomputed finish
        # time is bit-identical, so the original event must be reused.
        assert ideal_worker._exit_handles[c.cid] is handle_before
        sim.run_until_empty()
        assert sim.now == pytest.approx(64.0)

    def test_exit_projection_replaced_when_rate_changes(self):
        from repro.containers.allocator import AllocationMode

        sim = Simulator(seed=0, trace=False)
        worker = Worker(
            sim,
            contention=ContentionModel.ideal(),
            allocation_mode=AllocationMode.HARD,
        )
        c = worker.launch(make_linear_job(total_work=64.0))
        handle_before = worker._exit_handles[c.cid]
        sim.schedule(16.0, lambda e: worker.update_limit(c.cid, 0.5))
        sim.run(until=16.0)
        assert worker._exit_handles[c.cid] is not handle_before
        assert not handle_before.alive
        sim.run_until_empty()
        # 16 done at rate 1, then 48 left at the hard 0.5 cap: 112 total.
        assert c.exited
        assert sim.now == pytest.approx(112.0)

    def test_reschedule_tolerance_keeps_stale_projection(self):
        from repro.containers.allocator import AllocationMode

        sim = Simulator(seed=11, trace=False)
        worker = Worker(
            sim,
            contention=ContentionModel.ideal(),
            allocation_mode=AllocationMode.HARD,
            reschedule_tolerance=1e6,
        )
        c = worker.launch(make_linear_job(total_work=50.0))
        handle = worker._exit_handles[c.cid]
        # The hard-capped rate drop moves the true finish from 50 to 90,
        # but the delta sits inside the huge tolerance: event kept.
        sim.schedule(10.0, lambda e: worker.update_limit(c.cid, 0.5))
        sim.run(until=10.0)
        assert worker._exit_handles[c.cid] is handle
        sim.run_until_empty()
        # The stale event fires at t=50, re-projects, and the job still
        # completes at the analytically correct time.
        assert c.exited
        assert sim.now == pytest.approx(90.0)

    def test_negative_tolerance_rejected(self, sim):
        from repro.errors import CapacityError

        with pytest.raises(CapacityError):
            Worker(sim, reschedule_tolerance=-1.0)


class TestStarvation:
    def test_zero_allocation_schedules_no_exit(self, sim, ideal_worker):
        c = ideal_worker.launch(make_linear_job(total_work=10.0))
        # Force a starved view: allocator output pinned to zero.
        original = ideal_worker.allocator.allocate
        ideal_worker.allocator.allocate = (
            lambda *a, **k: np.zeros_like(original(*a, **k))
        )
        ideal_worker.poke()
        assert c.cid not in ideal_worker._exit_handles
        assert len(sim.queue) == 0
        # Allocation comes back (at a later instant — same-timestamp
        # pokes with unchanged worker state are coalesced): the exit is
        # re-projected and fires.
        ideal_worker.allocator.allocate = original
        sim.schedule(1.0, lambda e: ideal_worker.poke())
        sim.run(until=1.0)
        assert c.cid in ideal_worker._exit_handles
        sim.run_until_empty()
        assert c.exited

    def test_starved_interval_delivers_no_work(self, sim, ideal_worker):
        c = ideal_worker.launch(make_linear_job(total_work=10.0))
        original = ideal_worker.allocator.allocate
        ideal_worker.allocator.allocate = (
            lambda *a, **k: np.zeros_like(original(*a, **k))
        )
        ideal_worker.poke()
        sim.schedule(5.0, lambda e: ideal_worker.poke())
        sim.run(until=5.0)
        assert c.job.work_done == pytest.approx(0.0)
        assert c.cgroup.cpu_seconds() == pytest.approx(0.0)


class _CustomSpec(ResourceSpec):
    """A ResourceSpec subclass — forces the scalar settlement fallback."""


class TestVectorizedScalarParity:
    def test_fallback_path_matches_vectorized(self):
        def run(spec_cls) -> tuple[float, float, float]:
            sim = Simulator(seed=5, trace=False)
            worker = Worker(sim)  # default (jittered) contention
            jobs = []
            for i, work in enumerate((40.0, 70.0, 25.0)):
                job = make_linear_job(f"j{i}", total_work=work)
                job._footprint = spec_cls(
                    cpu_demand=1.0, memory=0.1 + 0.05 * i, blkio=0.01
                )
                jobs.append(worker.launch(job))
            for t in range(1, 60):
                sim.schedule(float(t), lambda e: worker.poke())
            sim.run_until_empty()
            return (
                sim.now,
                sum(c.cgroup.cpu_seconds() for c in jobs),
                sum(c.job.work_done for c in jobs),
            )

        fast = run(ResourceSpec)
        slow = run(_CustomSpec)
        assert fast == slow

    def test_vectorized_settle_accumulates_all_resources(self, sim, ideal_worker):
        job = make_linear_job(total_work=20.0)
        job._footprint = ResourceSpec(
            cpu_demand=0.5, memory=0.2, blkio=0.04, netio=0.02
        )
        c = ideal_worker.launch(job)
        sim.run_until_empty()
        # demand 0.5 → 40 s at rate 0.5; scale = 1 at full demand.
        totals = c.cgroup.totals
        assert sim.now == pytest.approx(40.0)
        assert totals.cpu == pytest.approx(20.0)
        assert totals.memory == pytest.approx(0.2 * 40.0)
        assert totals.blkio == pytest.approx(0.04 * 40.0)
        assert totals.netio == pytest.approx(0.02 * 40.0)


class TestExitEventSingleReallocation:
    def test_stale_projection_reallocates_once(self):
        """A stale exit projection triggers exactly one reallocation."""
        from repro.containers.allocator import AllocationMode

        sim = Simulator(seed=0, trace=False)
        worker = Worker(
            sim,
            contention=ContentionModel.ideal(),
            allocation_mode=AllocationMode.HARD,
            reschedule_tolerance=1e6,
        )
        c = worker.launch(make_linear_job(total_work=50.0))
        # The hard cap halves the rate but the projection is kept (huge
        # tolerance), so the exit event at t=50 fires stale.
        sim.schedule(10.0, lambda e: worker.update_limit(c.cid, 0.5))
        sim.run(until=49.0)
        calls = []
        original = worker._reallocate
        worker._reallocate = lambda: (calls.append(sim.now), original())
        sim.step()  # the stale exit event at t=50
        assert not c.exited  # only 10 + 40·0.5 = 30 of 50 delivered
        assert len(calls) == 1
        sim.run_until_empty()
        assert c.exited
        assert sim.now == pytest.approx(90.0)

    def test_true_exit_reallocates_once(self, sim, ideal_worker):
        ca = ideal_worker.launch(make_linear_job("a", total_work=20.0))
        ideal_worker.launch(make_linear_job("b", total_work=50.0))
        calls = []
        original = ideal_worker._reallocate
        ideal_worker._reallocate = lambda: (calls.append(sim.now), original())
        sim.run(until=39.0)
        calls.clear()
        sim.step()  # a's exit at t=40
        assert ca.exited
        assert len(calls) == 1
