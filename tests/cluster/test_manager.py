"""Unit tests for the cluster manager."""

from __future__ import annotations

import pytest

from repro.cluster.contention import ContentionModel
from repro.cluster.manager import Manager
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.errors import ClusterError
from repro.simcore.engine import Simulator
from tests.conftest import make_linear_job


def _submission(label: str, t: float, work: float = 20.0) -> JobSubmission:
    return JobSubmission(label=label, job=make_linear_job(label, work),
                         submit_time=t)


class TestSubmission:
    def test_job_arrives_at_submit_time(self, sim, ideal_worker):
        manager = Manager(sim, [ideal_worker])
        manager.submit(_submission("Job-1", 15.0))
        assert manager.pending == 1
        sim.run(until=15.0)
        assert manager.pending == 0
        assert manager.placement_of("Job-1").cid > 0

    def test_duplicate_label_rejected(self, sim, ideal_worker):
        manager = Manager(sim, [ideal_worker])
        manager.submit(_submission("Job-1", 0.0))
        with pytest.raises(ClusterError):
            manager.submit(_submission("Job-1", 5.0))

    def test_submit_all(self, sim, ideal_worker):
        manager = Manager(sim, [ideal_worker])
        manager.submit_all([_submission("Job-1", 0.0), _submission("Job-2", 3.0)])
        sim.run_until_empty()
        assert set(manager.placements) == {"Job-1", "Job-2"}

    def test_placement_before_arrival_raises(self, sim, ideal_worker):
        manager = Manager(sim, [ideal_worker])
        manager.submit(_submission("Job-1", 50.0))
        with pytest.raises(ClusterError):
            manager.placement_of("Job-1")

    def test_negative_submit_time_rejected(self):
        with pytest.raises(ValueError):
            _submission("Job-1", -1.0)


class TestPlacement:
    def test_spread_across_workers(self):
        sim = Simulator(seed=0)
        workers = [
            Worker(sim, name=f"w{i}", contention=ContentionModel.ideal())
            for i in range(2)
        ]
        manager = Manager(sim, workers)
        manager.submit_all(
            [_submission(f"Job-{i}", 0.0, work=100.0) for i in range(1, 5)]
        )
        sim.run(until=1.0)
        placed = [manager.placement_of(f"Job-{i}").worker_name for i in range(1, 5)]
        assert placed.count("w0") == 2 and placed.count("w1") == 2

    def test_requires_workers(self, sim):
        with pytest.raises(ClusterError):
            Manager(sim, [])

    def test_duplicate_worker_names_rejected(self, sim):
        workers = [
            Worker(sim, name="same", contention=ContentionModel.ideal()),
            Worker(sim, name="same", contention=ContentionModel.ideal()),
        ]
        with pytest.raises(ClusterError):
            Manager(sim, workers)
