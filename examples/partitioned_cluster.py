#!/usr/bin/env python3
"""Control-plane faults and exactly-once recovery: the sixth policy axis.

Three demonstrations of the message fabric:

1. **Partition, retry vs fire-once** — the :func:`network_partition`
   scenario splits the manager from half the fleet for 30 s: exit
   notifications and placements into the dark half vanish.  With
   ``noretry`` every swallowed placement permanently fails its job and
   lost exits leave slots invisible until the slow reconcile audit;
   the retry/backoff stack resends until the partition heals and loses
   nothing.
2. **Gray link** — one worker's control link is slow and lossy rather
   than dead (:func:`gray_network`): most messages eventually land
   after a few jittered backoff rounds, so the cost is latency, not
   jobs.
3. **Fault-plan grammar** — the same string grammar every axis uses,
   composed inline: ``"drop(0.1)+delay(exp,0.2):retry(max=6,base=0.3)"``.

Run:
    python examples/partitioned_cluster.py
"""

from repro import NAPolicy, SimulationConfig
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import gray_network, network_partition

SEED = 42


def partition_comparison() -> None:
    """Part 1: the same 30s split under three reliability modes."""
    sc = network_partition(seed=SEED)
    print(render_header(
        f"Network partition: {len(sc.specs)} jobs, 6 workers, half the "
        "fleet dark from t=25s to t=55s"
    ))
    rows = []
    for label, fabric in (
        ("ideal", "ideal"),
        ("noretry", "partition(25..55):noretry(reconcile=45)"),
        ("retry", sc.fabric),
    ):
        result = run_cluster(
            list(sc.specs),
            NAPolicy,
            SimulationConfig(seed=SEED, trace=False),
            capacities=sc.capacities,
            max_containers=sc.max_containers,
            fabric=fabric,
        )
        summary = result.summary
        rows.append([
            label,
            round(summary.makespan, 1),
            len(summary.failed_jobs),
            int(summary.message_retries()),
            int(summary.messages_dropped()),
        ])
    print(render_table(
        ["fabric", "makespan (s)", "failed", "resends", "drops"],
        rows,
    ))
    print("\nnoretry fails every placement the partition swallows; "
          "backoff resends land once it heals, so retry loses nothing.\n")


def gray_link() -> None:
    """Part 2: a slow, lossy control link to one worker."""
    sc = gray_network(seed=SEED)
    result = run_cluster(
        list(sc.specs),
        NAPolicy,
        SimulationConfig(seed=SEED, trace=False),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        fabric=sc.fabric,
    )
    summary = result.summary
    print(render_header(
        "Gray link: worker-3's control traffic 6x slow and lossy"
    ))
    print(f"completed {len(summary.completions)}/{len(sc.specs)} jobs, "
          f"{int(summary.message_retries())} resends, "
          f"{int(summary.messages_dropped())} drops, "
          f"mean delivery latency "
          f"{summary.mean_message_latency() * 1000:.0f} ms\n")


def inline_fault_plan() -> None:
    """Part 3: composing a fault plan from the string grammar."""
    sc = network_partition(seed=SEED, n_jobs=20)
    result = run_cluster(
        list(sc.specs),
        NAPolicy,
        SimulationConfig(seed=SEED, trace=False),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        fabric="drop(0.1)+delay(exp,0.2):retry(max=6,base=0.3)",
    )
    summary = result.summary
    print(render_header(
        "Inline plan: drop(0.1)+delay(exp,0.2):retry(max=6,base=0.3)"
    ))
    print(f"{int(summary.messages_sent())} messages carried "
          f"{len(summary.completions)} jobs to completion "
          f"({int(summary.message_retries())} resends, "
          f"{int(summary.duplicates_suppressed())} duplicates suppressed)")


if __name__ == "__main__":
    partition_comparison()
    gray_link()
    inline_fault_plan()
