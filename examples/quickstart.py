#!/usr/bin/env python3
"""Quickstart: FlowCon vs the default scheduler on the paper's schedule.

Runs the §5.3 fixed workload (VAE at 0 s, MNIST-PyTorch at 40 s,
MNIST-TensorFlow at 80 s) once under the default platform (NA) and once
under FlowCon, then prints per-job completion times and the makespan.

Run:
    python examples/quickstart.py
"""

from repro import (
    FlowConConfig,
    FlowConPolicy,
    NAPolicy,
    SimulationConfig,
    fixed_three_job,
    run_scenario,
)
from repro.analysis.compare import compare_runs
from repro.experiments.report import render_header, render_table


def main() -> None:
    specs = fixed_three_job()
    sim_cfg = SimulationConfig(seed=1, trace=False)

    na = run_scenario(specs, NAPolicy(), sim_cfg)
    flowcon = run_scenario(
        specs,
        FlowConPolicy(FlowConConfig(alpha=0.05, itval=20.0)),
        sim_cfg,
    )

    report = compare_runs(na.summary, flowcon.summary)

    print(render_header("FlowCon quickstart — fixed 3-job schedule (§5.3)"))
    rows = []
    for label in sorted(report.reductions):
        rows.append(
            [
                label,
                na.completion_times()[label],
                flowcon.completion_times()[label],
                f"{report.reductions[label]:+.1f} %",
            ]
        )
    rows.append(
        ["makespan", na.makespan, flowcon.makespan,
         f"{report.makespan_reduction:+.1f} %"]
    )
    print(render_table(["job", "NA (s)", "FlowCon (s)", "reduction"], rows))

    best_label, best = report.best
    print(
        f"\nFlowCon wins {report.wins}/{report.n_jobs} jobs; "
        f"best win {best_label} at {best:.1f} % — the paper reports up to "
        f"42.06 % on its testbed without sacrificing makespan."
    )


if __name__ == "__main__":
    main()
