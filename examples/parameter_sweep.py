#!/usr/bin/env python3
"""Parameter sweep: map FlowCon's (α × itval) design space.

Generalizes the paper's Figs. 3–6 into a grid over any workload and
prints a heat-table of per-job reductions and makespan deltas — the tool
an operator would use to pick α and itval for their own job mix.

The 20 grid cells are independent runs, so the sweep fans out over all
local cores through the batch runner (``workers=``): results are
identical to a serial sweep at any worker count.

Run:
    python examples/parameter_sweep.py
"""

from repro import SimulationConfig
from repro.analysis.sweeps import sweep_grid
from repro.experiments.batch import default_workers
from repro.experiments.report import render_header, render_table
from repro.experiments.scenarios import fixed_three_job


def main() -> None:
    alphas = [0.01, 0.03, 0.05, 0.10, 0.15]
    itvals = [20.0, 30.0, 40.0, 60.0]
    grid = sweep_grid(
        fixed_three_job(),
        alphas=alphas,
        itvals=itvals,
        sim_config=SimulationConfig(seed=1, trace=False),
        workers=default_workers(),
    )

    print(render_header(
        "FlowCon (alpha x itval) sweep on the fixed 3-job schedule"
    ))
    print("\nMNIST-TF (Job-3) completion-time reduction vs NA (%):\n")
    rows = []
    for alpha in alphas:
        row = [f"α={alpha:.0%}"]
        for itval in itvals:
            cell = grid.cell(alpha, itval)
            row.append(round(cell.report.reductions["Job-3"], 1))
        rows.append(row)
    print(render_table([""] + [f"itval={iv:g}" for iv in itvals], rows))

    print("\nMakespan reduction vs NA (%):\n")
    rows = []
    for alpha in alphas:
        row = [f"α={alpha:.0%}"]
        for itval in itvals:
            cell = grid.cell(alpha, itval)
            row.append(round(cell.report.makespan_reduction, 2))
        rows.append(row)
    print(render_table([""] + [f"itval={iv:g}" for iv in itvals], rows))

    best = grid.best_cell("Job-3")
    lo, hi = grid.makespan_range()
    print(
        f"\nbest setting for MNIST-TF: α={best.alpha:.0%}, "
        f"itval={best.itval:g}s "
        f"({best.report.reductions['Job-3']:.1f} % reduction); "
        f"makespan deltas across the grid span {lo:+.2f} % … {hi:+.2f} %."
    )


if __name__ == "__main__":
    main()
