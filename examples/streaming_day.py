#!/usr/bin/env python3
"""Streaming a diurnal day: lazy arrivals, sketch-based SLO metrics.

Production workloads are streams, not lists: a day of arrivals follows
a diurnal rate curve, flash crowds spike it, and job sizes are heavy-
tailed.  The generator family behind ``make_stream`` models all of
that *lazily* — each :class:`WorkloadSpec` is drawn on demand from a
seeded recipe, so a million-job day never materializes a million-entry
list, and iterating the same stream twice (or after pickling) is
bit-identical:

    make_stream("diurnal",     n_jobs=...,  # sinusoidal rate
                mean_gap=3.0, peak_to_trough=4.0, period=600.0)
    make_stream("flash_crowd", n_jobs=...)  # Poisson + seeded bursts
    make_stream("pareto_mix",  n_jobs=...)  # heavy-tailed job sizes
    make_stream("poisson",     n_jobs=...)  # flat baseline
    # every family takes tenants=(("name", share, weight), ...)

Pairing a stream with ``SimulationConfig(streaming_metrics=True)``
swaps the per-job metrics for mergeable quantile sketches: queue
delays and completions fold into O(1)-memory aggregates (p50/p95/p99
within a certified rank-error bound, rolling/peak throughput,
per-tenant views) while the *dynamics* stay bit-identical to a dense
run — same makespan, same totals, same completion events.

This example runs the ``diurnal_cluster`` scenario both ways, checks
the aggregates agree, and prints the streaming run's SLO report.

The same switches ride the CLI:

    python -m repro compare --workload diurnal --jobs 400 \
        --streaming-metrics --slots 2 --workers 8 --admission wfq

(``--workload`` accepts any stream family; ``--streaming-metrics``
prints the sketch-backed SLO table instead of per-job output.)

Run:
    python examples/streaming_day.py
"""

from repro.baselines.na import NAPolicy
from repro.config import SimulationConfig
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import diurnal_cluster


def run(streaming: bool):
    scenario = diurnal_cluster(seed=42, n_jobs=400)
    return run_cluster(
        scenario.workload,
        NAPolicy,
        SimulationConfig(seed=42, trace=False),
        capacities=scenario.capacities,
        max_containers=scenario.max_containers,
        admission=scenario.admission,
        streaming_metrics=streaming,
    ).summary


def main() -> None:
    dense = run(streaming=False)
    streaming = run(streaming=True)

    # Streaming changes bookkeeping, never dynamics.
    assert streaming.makespan == dense.makespan
    assert streaming.n_completed == dense.n_completed
    assert streaming.total_queue_delay() == dense.total_queue_delay()
    assert streaming.max_queue_delay() == dense.max_queue_delay()

    slo = streaming.slo_report()
    bound = streaming.stream.rank_error_bound()
    print(render_header(
        f"diurnal day, 400 jobs on 8 workers x 2 slots "
        f"(sketch rank error ±{bound:.2%})"
    ))
    print(render_table(
        ["metric", "value"],
        [
            ["jobs completed", f"{streaming.n_completed}"],
            ["makespan (s)", f"{streaming.makespan:.1f}"],
            ["p50 queue delay (s)", f"{slo['p50_queue_delay']:.1f}"],
            ["p95 queue delay (s)", f"{slo['p95_queue_delay']:.1f}"],
            ["p99 queue delay (s)", f"{slo['p99_queue_delay']:.1f}"],
            ["rolling tput (jobs/s)", f"{slo['rolling_throughput']:.2f}"],
            ["peak tput (jobs/s)", f"{slo['peak_throughput']:.2f}"],
        ],
    ))
    for tenant in ("batch", "interactive"):
        p95 = streaming.quantile_queue_delay(0.95, tenant=tenant)
        print(f"  {tenant:<12} p95 queue delay {p95:8.1f} s")
    print(
        f"\nAggregates match the dense run exactly (makespan "
        f"{dense.makespan:.1f} s, total queue delay "
        f"{dense.total_queue_delay():.0f} s) while the streaming run "
        f"kept only sketches - no per-job records."
    )


if __name__ == "__main__":
    main()
