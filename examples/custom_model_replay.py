#!/usr/bin/env python3
"""Bring your own model: replay a real training log under FlowCon.

FlowCon is metric-agnostic — it only needs an evaluation function it can
poll.  This example shows the two extension points a user of this library
touches:

1. :class:`PiecewiseLinearCurve` — feed logged ``(progress, loss)`` points
   from a *real* training run so the simulated job traces the genuine
   trajectory;
2. :class:`TrainingJob` — wrap the curve with a work budget and resource
   footprint, then schedule it against zoo models.

Run:
    python examples/custom_model_replay.py
"""

from repro import (
    FlowConPolicy,
    NAPolicy,
    SimulationConfig,
    run_scenario,
)
from repro.cluster.submission import JobSubmission
from repro.cluster.manager import Manager
from repro.cluster.worker import Worker
from repro.containers.spec import ResourceSpec
from repro.experiments.report import render_header, render_table
from repro.metrics.recorder import MetricsRecorder
from repro.simcore.engine import Simulator
from repro.workloads.curves import PiecewiseLinearCurve
from repro.workloads.evalfn import EvalFunction, EvalKind
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.job import TrainingJob

# A (downsampled) validation-loss log of a fictional transformer fine-tune:
# (fraction of steps completed, loss).  Note the mid-training plateau —
# exactly the kind of structure analytic curve families miss.
LOGGED_LOSS = [
    (0.00, 4.10),
    (0.05, 2.60),
    (0.10, 1.90),
    (0.20, 1.45),
    (0.30, 1.30),
    (0.45, 1.27),  # plateau
    (0.60, 1.05),  # second descent after LR drop
    (0.80, 0.92),
    (1.00, 0.88),
]


def build_custom_job() -> TrainingJob:
    """A 150-cpu-second job tracing the logged loss curve."""
    return TrainingJob(
        name="Transformer-FT (custom)",
        total_work=150.0,
        curve=PiecewiseLinearCurve(LOGGED_LOSS),
        evalfn=EvalFunction(
            kind=EvalKind.CROSS_ENTROPY, start=4.10, converged=0.88
        ),
        footprint=ResourceSpec(cpu_demand=0.9, memory=0.3, blkio=0.05),
        warmup_work=3.0,
        total_iterations=12_000,
    )


def run_policy(policy) -> dict[str, float]:
    """Run the custom job against two zoo models under *policy*."""
    sim = Simulator(seed=11, trace=False)
    worker = Worker(sim)
    manager = Manager(sim, [worker])
    recorder = MetricsRecorder(worker, sample_interval=5.0)
    recorder.start()
    policy.attach(worker)

    zoo = WorkloadGenerator.fixed(
        [("vae@pytorch", 0.0), ("gru@tensorflow", 30.0)]
    )
    submissions = [
        JobSubmission(s.label, s.build_job(), s.submit_time) for s in zoo
    ]
    submissions.append(JobSubmission("Job-3", build_custom_job(), 60.0))
    manager.submit_all(submissions)

    while len(recorder.completions) < 3:
        if sim.step() is None:
            raise RuntimeError("simulation stalled")
    policy.detach()
    recorder.stop()
    return recorder.summary().completion_times() | {
        "makespan": recorder.summary().makespan
    }


def main() -> None:
    na = run_policy(NAPolicy())
    fc = run_policy(FlowConPolicy())

    print(render_header("Custom model (replayed log) under FlowCon"))
    rows = []
    for label, name in [
        ("Job-1", "VAE (Pytorch)"),
        ("Job-2", "RNN-GRU (Tensorflow)"),
        ("Job-3", "Transformer-FT (custom)"),
        ("makespan", ""),
    ]:
        reduction = (na[label] - fc[label]) / na[label] * 100
        rows.append([label, name, na[label], fc[label], f"{reduction:+.1f} %"])
    print(render_table(
        ["job", "model", "NA (s)", "FlowCon (s)", "reduction"], rows
    ))
    print(
        "\nThe custom job's plateau briefly demotes it to WL/CL and its "
        "second descent promotes it back to NL — watch the executor trace "
        "with SimulationConfig(trace=True) to see the transitions."
    )


if __name__ == "__main__":
    main()
