#!/usr/bin/env python3
"""Large fleet: the fused fleet-tick engine on a 64-worker cluster.

Per-worker elastic control (the paper's §3.1 worker-side loop) costs one
settle + reallocate + observation pass per worker per sampling tick.  On
a fleet the sampling grid is shared — every recorder ticks at the same
instants — so ``SimulationConfig(fleet_mode=True)`` coalesces all those
same-instant ticks into one vectorized pass over a packed
``(worker, container)`` arena, bit-identical to the serial loop.

This example runs the ``two_thousand_job`` Poisson stream (trimmed to
600 arrivals so the demo stays quick) against 64 one-slot workers, once
serially and once fused, then verifies the runs are indistinguishable —
same completion times, same event count — and reports the speedup.

Run:
    python examples/large_fleet.py
"""

import time

from repro.baselines.na import NAPolicy
from repro.cluster.contention import ContentionModel
from repro.config import SimulationConfig
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import two_thousand_job


def run(fleet_mode: bool):
    scenario = two_thousand_job(seed=42, n_jobs=600)
    config = SimulationConfig(
        seed=42,
        trace=False,
        fleet_mode=fleet_mode,
        contention=ContentionModel.ideal(),
        sample_interval=2.0,
    )
    t0 = time.perf_counter()
    result = run_cluster(
        list(scenario.specs),
        NAPolicy,
        config,
        capacities=scenario.capacities,
        max_containers=scenario.max_containers,
        placement="spread",
    )
    return result, time.perf_counter() - t0


def main() -> None:
    serial, serial_s = run(fleet_mode=False)
    fused, fused_s = run(fleet_mode=True)

    serial_times = serial.completion_times()
    fused_times = fused.completion_times()
    assert fused_times == serial_times, "fleet mode must be bit-identical"
    assert fused.sim.events_processed == serial.sim.events_processed

    print(render_header("600-job Poisson stream on 64 one-slot workers"))
    rows = [
        [
            label,
            result.sim.events_processed,
            f"{elapsed:.2f}",
            round(result.sim.events_processed / elapsed),
        ]
        for label, result, elapsed in [
            ("serial (fleet_mode=False)", serial, serial_s),
            ("fused (fleet_mode=True)", fused, fused_s),
        ]
    ]
    print(render_table(["run", "events", "wall (s)", "events/s"], rows))

    makespan = max(fused_times.values())
    print(
        f"\n{len(fused_times)} jobs completed, makespan "
        f"{makespan:.1f} simulated seconds; fused pass finished "
        f"{serial_s / fused_s:.2f}x faster than the serial loop with "
        f"identical completion times."
    )


if __name__ == "__main__":
    main()
