#!/usr/bin/env python3
"""Sharded fleet: parallel worker shards between manager touchpoints.

The fused fleet-tick engine (``fleet_mode=True``) already coalesces
same-instant sampling ticks into one vectorized pass.
``SimulationConfig(shards=N)`` goes one step further: each fused batch
is partitioned into N contiguous worker shards that advance their
worker-local events — settlement, reallocation, exit projection,
sampling — independently inside a conservative lookahead window (the
gap to the next manager-bound event), with the pure numeric kernels
eligible for a process pool on wide arenas.  The result is pinned
bit-identical to the serial engine: same completion times, same event
count, same digests.

This example runs the ``two_thousand_job`` Poisson stream (trimmed to
600 arrivals so the demo stays quick) serially, fused, and sharded at
shards=4, verifies the three runs are indistinguishable, and reports
each run's throughput.

Run:
    python examples/sharded_fleet.py
"""

import time

from repro.baselines.na import NAPolicy
from repro.cluster.contention import ContentionModel
from repro.config import SimulationConfig
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import two_thousand_job


def run(fleet_mode: bool, shards: int = 1):
    scenario = two_thousand_job(seed=42, n_jobs=600)
    config = SimulationConfig(
        seed=42,
        trace=False,
        fleet_mode=fleet_mode,
        shards=shards,
        contention=ContentionModel.ideal(),
        sample_interval=2.0,
    )
    t0 = time.perf_counter()
    result = run_cluster(
        list(scenario.specs),
        NAPolicy,
        config,
        capacities=scenario.capacities,
        max_containers=scenario.max_containers,
        placement="spread",
    )
    return result, time.perf_counter() - t0


def main() -> None:
    serial, serial_s = run(fleet_mode=False)
    fused, fused_s = run(fleet_mode=True)
    sharded, sharded_s = run(fleet_mode=True, shards=4)

    serial_times = serial.completion_times()
    assert fused.completion_times() == serial_times
    assert sharded.completion_times() == serial_times, (
        "the sharded executor must be bit-identical to serial"
    )
    assert sharded.sim.events_processed == serial.sim.events_processed

    print(render_header("600-job Poisson stream on 64 one-slot workers"))
    rows = [
        [
            label,
            result.sim.events_processed,
            f"{elapsed:.2f}",
            round(result.sim.events_processed / elapsed),
        ]
        for label, result, elapsed in [
            ("serial (fleet_mode=False)", serial, serial_s),
            ("fused (fleet_mode=True)", fused, fused_s),
            ("sharded (shards=4)", sharded, sharded_s),
        ]
    ]
    print(render_table(["run", "events", "wall (s)", "events/s"], rows))

    makespan = max(serial_times.values())
    print(
        f"\n{len(serial_times)} jobs completed, makespan "
        f"{makespan:.1f} simulated seconds; all three runs produced "
        "identical completion times and event counts."
    )
    print(
        "\nOn this 64×1-slot fleet the arena stays below the executor's "
        "IPC break-even (min_parallel_rows), so the kernels run in "
        "process and the speedup over serial is the fused arena pass "
        "the executor inherits; wider fleets engage the process pool."
    )


if __name__ == "__main__":
    main()
