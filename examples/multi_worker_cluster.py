#!/usr/bin/env python3
"""Multi-worker cluster: FlowCon running on every worker of a cluster.

The paper's architecture (§3.1) runs FlowCon worker-side precisely so it
scales out: the manager only places containers; each worker manages its
own pool.  This example assembles a two-worker cluster from the low-level
API — one executor per worker — and submits a 8-job random mix.

Run:
    python examples/multi_worker_cluster.py
"""

from repro.cluster.manager import Manager
from repro.cluster.submission import JobSubmission
from repro.cluster.worker import Worker
from repro.config import FlowConConfig
from repro.core.executor import Executor
from repro.experiments.report import render_header, render_table
from repro.metrics.recorder import MetricsRecorder
from repro.simcore.engine import Simulator
from repro.workloads.generator import WorkloadGenerator

import numpy as np


def main() -> None:
    sim = Simulator(seed=3, trace=False)
    workers = [Worker(sim, name=f"worker-{i}") for i in range(2)]
    manager = Manager(sim, workers)

    recorders = []
    executors = []
    for worker in workers:
        recorder = MetricsRecorder(worker, sample_interval=5.0)
        recorder.start()
        recorders.append(recorder)
        executor = Executor(worker, FlowConConfig(alpha=0.05, itval=20.0))
        executor.start()
        executors.append(executor)

    gen = WorkloadGenerator(np.random.default_rng(3))
    specs = gen.random_mix(8, window=(0.0, 120.0))
    manager.submit_all(
        [JobSubmission(s.label, s.build_job(), s.submit_time) for s in specs]
    )

    total = len(specs)
    while sum(len(r.completions) for r in recorders) < total:
        if sim.step() is None:
            raise RuntimeError("simulation stalled")
    for executor in executors:
        executor.stop()
    for recorder in recorders:
        recorder.stop()

    print(render_header("Two-worker cluster, FlowCon per worker"))
    rows = []
    for spec in specs:
        placement = manager.placement_of(spec.label)
        recorder = recorders[int(placement.worker_name.split("-")[1])]
        completion = recorder.summary().completion_time(spec.label)
        rows.append(
            [spec.label, spec.model_key, placement.worker_name,
             round(spec.submit_time, 1), completion]
        )
    print(render_table(
        ["job", "model", "worker", "submitted (s)", "completion (s)"], rows
    ))

    for worker, executor, recorder in zip(workers, executors, recorders):
        jobs = [c.label for c in recorder.completions]
        print(
            f"\n{worker.name}: ran {len(jobs)} jobs {jobs}; "
            f"Algorithm 1 executed {executor.runs}× "
            f"({executor.interrupts} listener interrupts, "
            f"{executor.backoffs} back-offs)"
        )


if __name__ == "__main__":
    main()
