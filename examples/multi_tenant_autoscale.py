#!/usr/bin/env python3
"""Multi-tenant fairness and elastic fleets: the admission × autoscale axes.

Two demonstrations of the scheduling matrix beyond placement/rebalance:

1. **Weighted fair queueing** — the :func:`multi_tenant` scenario floods
   a bounded 4-worker cluster with a heavy ``batch`` tenant while a
   light ``interactive`` tenant (4× weight) submits a quarter of the
   jobs.  ``admission="wfq"`` drains the two tenants in proportion to
   their weights, cutting the interactive tenant's p95 queue delay vs
   plain FIFO without touching batch throughput much.
2. **Queue-driven autoscaling** — the :func:`elastic_cluster` scenario
   hits a deliberately undersized 2-worker fleet with a Poisson burst.
   ``autoscale="queue_depth"`` provisions workers (30 s simulated boot)
   while the queue is deep and retires them — only ever when empty —
   once it drains, collapsing the makespan at a fraction of a
   statically overprovisioned fleet's footprint.

The same knobs are reachable from the CLI::

    python -m repro compare --workers 4 --admission wfq \
        --tenant-weights interactive=4 batch=1
    python -m repro compare --workers 2 --autoscale queue_depth

Run:
    python examples/multi_tenant_autoscale.py
"""

from repro.baselines.na import NAPolicy
from repro.config import SimulationConfig
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import elastic_cluster, multi_tenant


def fairness_demo() -> None:
    sc = multi_tenant(seed=42)
    cfg = SimulationConfig(seed=42, trace=False)
    rows = []
    for admission in ("fifo", "priority", "wfq", "sjf"):
        result = run_cluster(
            list(sc.specs),
            NAPolicy,
            cfg,
            capacities=sc.capacities,
            max_containers=sc.max_containers,
            admission=admission,
        )
        summary = result.summary
        rows.append([
            admission,
            round(summary.p95_queue_delay("interactive"), 1),
            round(summary.p95_queue_delay("batch"), 1),
            round(summary.makespan, 1),
        ])
    print(render_header(
        "multi_tenant: interactive (w=4) vs batch (w=1), 4 workers × 2 slots"
    ))
    print(render_table(
        ["admission", "p95 interactive (s)", "p95 batch (s)", "makespan (s)"],
        rows,
    ))


def autoscale_demo() -> None:
    sc = elastic_cluster(seed=42)
    cfg = SimulationConfig(seed=42, trace=False, max_containers=3)
    rows = []
    for autoscale in ("none", "queue_depth", "progress"):
        result = run_cluster(
            list(sc.specs),
            NAPolicy,
            cfg,
            capacities=sc.capacities,
            max_containers=sc.max_containers,
            autoscale=autoscale,
        )
        summary = result.summary
        rows.append([
            autoscale,
            round(summary.makespan, 1),
            max(summary.peak_fleet(), len(result.workers)),
            max(summary.final_fleet(), 0) or len(result.workers),
            round(summary.p95_queue_delay(), 1),
        ])
    print()
    print(render_header(
        "elastic_cluster: 48-job Poisson burst on 2 bounded workers"
    ))
    print(render_table(
        ["autoscale", "makespan (s)", "peak fleet", "final fleet",
         "p95 queue delay (s)"],
        rows,
    ))


def main() -> None:
    fairness_demo()
    autoscale_demo()


if __name__ == "__main__":
    main()
