#!/usr/bin/env python3
"""Failure injection and durable recovery: the fifth policy axis.

Three demonstrations of the chaos layer:

1. **Rolling restart, lost vs checkpoint** — the
   :func:`rolling_restart` scenario takes every worker of a loaded
   4-node fleet down once, in sequence.  Under ``lost`` durability
   each crash restarts its orphans from zero; ``checkpoint`` resumes
   them from the last periodic snapshot, paying only a footprint-
   proportional restore delay.  The makespan gap is the value of
   durable checkpoints.
2. **A scripted fault plan** — :class:`ScriptedFailures` +
   :class:`WorkerFault` drive an exact crash/recover timeline through
   the same machinery, with retry budgets deciding which jobs survive.
3. **Fail-slow degradation** — the :func:`slow_node` scenario quietly
   throttles one worker to a quarter capacity; progress-aware
   rebalancing migrates the stragglers off the sick node.

Run:
    python examples/chaos_cluster.py
"""

from repro import NAPolicy, SimulationConfig
from repro.cluster.failures import ScriptedFailures, WorkerFault
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_cluster
from repro.experiments.scenarios import rolling_restart, slow_node

SEED = 42


def durability_comparison() -> None:
    """Part 1: the same maintenance wave under three durability modes."""
    sc = rolling_restart(seed=SEED)
    print(render_header(
        f"Rolling restart: {len(sc.specs)} jobs, {sc.n_workers} workers, "
        "every node down once for 30s"
    ))
    rows = []
    for failures in ("none", "rolling", "rolling:checkpoint"):
        result = run_cluster(
            list(sc.specs),
            NAPolicy,
            SimulationConfig(seed=SEED, trace=False),
            capacities=sc.capacities,
            max_containers=sc.max_containers,
            failures=failures,
        )
        summary = result.summary
        rows.append([
            failures,
            round(summary.makespan, 1),
            summary.total_retries(),
            round(sum(result.manager.lost_work.values()), 1),
            len(summary.failed_jobs),
        ])
    print(render_table(
        ["failures", "makespan (s)", "retries", "lost CPU-s", "failed"],
        rows,
    ))
    print("\ncheckpoint resumes orphans from the last 30s snapshot; "
          "lost replays everything the crash ate.\n")


def scripted_outage() -> None:
    """Part 2: an exact fault timeline with a tight retry budget."""
    sc = rolling_restart(seed=SEED, n_jobs=8, retry_budget=1)
    injector = ScriptedFailures(
        [
            # worker-0 dies at t=45 and stays dead; worker-1 blips.
            WorkerFault(worker="worker-0", time=45.0),
            WorkerFault(worker="worker-1", time=90.0, recover_after=25.0),
        ],
        durability="checkpoint(15)",
    )
    result = run_cluster(
        list(sc.specs),
        NAPolicy,
        SimulationConfig(seed=SEED, trace=False),
        capacities=sc.capacities,
        max_containers=sc.max_containers,
        failures=injector,
    )
    summary = result.summary
    print(render_header(
        "Scripted plan: permanent crash at 45s + 25s blip at 90s "
        "(retry budget 1)"
    ))
    print(f"completed {len(summary.completions)}/8 jobs, "
          f"{summary.total_retries()} crash-restarts, "
          f"{len(summary.failed_jobs)} retry-exhausted")
    for label in summary.failed_labels():
        used, lost = summary.failed_jobs[label]
        print(f"  {label}: gave up after {used} retries "
              f"({lost:.1f} CPU-s of progress lost)")
    print(f"fleet ended at {len(result.manager.workers)} workers "
          f"(crashed: {sorted(result.manager.crashed_workers)})\n")


def fail_slow() -> None:
    """Part 3: a gray failure, with and without progress rebalancing."""
    sc = slow_node(seed=SEED)
    print(render_header(
        "Fail-slow: one of 4 workers drops to 25% capacity for 240s"
    ))
    rows = []
    for rebalance in ("none", sc.rebalance):
        result = run_cluster(
            list(sc.specs),
            NAPolicy,
            SimulationConfig(seed=SEED, trace=False),
            capacities=sc.capacities,
            max_containers=sc.max_containers,
            rebalance=rebalance,
            failures=sc.failures,
        )
        summary = result.summary
        rows.append([
            rebalance,
            round(summary.makespan, 1),
            summary.total_migrations(),
        ])
    print(render_table(["rebalance", "makespan (s)", "migrations"], rows))
    print("\nno containers crash in a gray failure — only progress-aware "
          "rebalancing notices the stragglers and moves them off.")


if __name__ == "__main__":
    durability_comparison()
    scripted_outage()
    fail_slow()
