#!/usr/bin/env python3
"""Parallel batch study: many runs, all cores, identical results.

Demonstrates the high-throughput experiment path added for large
scenario spaces:

1. a multi-seed FlowCon-vs-NA comparison fanned out over a process pool
   with :func:`repro.experiments.batch.run_many`;
2. a cluster-size scaling study via
   :func:`repro.experiments.runner.scaling_study`;
3. the 50-job stress scenario (:func:`repro.experiments.scenarios
   .fifty_job`) exercising the vectorized settlement core.

Run:
    python examples/parallel_batch_study.py [n_seeds]
"""

import sys
import time
from functools import partial

from repro import FlowConConfig, FlowConPolicy, NAPolicy, SimulationConfig
from repro.experiments.batch import default_workers, run_many
from repro.experiments.runner import scaling_study
from repro.experiments.report import render_header, render_table
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import fifty_job, random_ten_job
from repro.metrics.summary import reduction_pct


def main(n_seeds: int = 6) -> None:
    workers = default_workers()
    cfg = SimulationConfig(trace=False)
    fc_cfg = FlowConConfig(alpha=0.10, itval=20.0)

    # -- 1. multi-seed study, interleaved NA/FlowCon pairs ------------------
    seeds = list(range(n_seeds))
    specs_list, factories, run_seeds, labels = [], [], [], []
    for seed in seeds:
        specs = random_ten_job(seed=seed)
        specs_list += [specs, specs]
        factories += [NAPolicy, partial(FlowConPolicy, fc_cfg)]
        run_seeds += [seed, seed]
        labels += [f"NA/{seed}", f"FC/{seed}"]

    print(render_header(
        f"{2 * n_seeds} ten-job runs across {workers} process(es)"
    ))
    t0 = time.perf_counter()
    records = run_many(
        specs_list, factories, cfg,
        workers=workers, seeds=run_seeds, labels=labels,
    )
    wall = time.perf_counter() - t0
    sim_time = sum(r.wall_time for r in records)
    print(f"wall {wall:.2f}s for {sim_time:.2f}s of run time "
          f"({sim_time / wall:.2f}x effective parallelism)\n")

    rows = []
    for i, seed in enumerate(seeds):
        na, fc = records[2 * i], records[2 * i + 1]
        rows.append([
            seed,
            round(na.makespan, 1),
            round(fc.makespan, 1),
            round(reduction_pct(na.makespan, fc.makespan), 2),
        ])
    print(render_table(
        ["seed", "NA makespan", "FlowCon makespan", "reduction %"], rows
    ))

    # -- 2. cluster-size scaling on the 50-job stress mix -------------------
    specs50 = fifty_job(seed=0)
    print("\n" + render_header("50-job mix across simulated cluster sizes"))
    scale_records = scaling_study(
        specs50,
        partial(FlowConPolicy, fc_cfg),
        [1, 2, 4],
        sim_config=cfg,
        workers=workers,
    )
    print(render_table(
        ["cluster", "makespan (s)", "events"],
        [[r.label, round(r.makespan, 1), r.events_processed]
         for r in scale_records],
    ))

    # -- 3. single-node 50-job throughput ------------------------------------
    t0 = time.perf_counter()
    result = run_scenario(specs50, FlowConPolicy(fc_cfg), cfg)
    wall = time.perf_counter() - t0
    print(
        f"\nsingle-node 50-job FlowCon run: {result.sim.events_processed} "
        f"events in {wall:.2f}s "
        f"({result.sim.events_processed / wall:,.0f} events/s), "
        f"makespan {result.makespan:.0f}s"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
