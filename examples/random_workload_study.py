#!/usr/bin/env python3
"""Random-workload study: the paper's §5.4/§5.5 experiments in one script.

Submits 5, 10 and 15 jobs at uniformly random times in [0, 200] s and
compares FlowCon against NA at each scale, printing win/loss profiles and
CPU-usage sparklines.

Run:
    python examples/random_workload_study.py [seed]
"""

import sys

import numpy as np

from repro import (
    FlowConConfig,
    FlowConPolicy,
    NAPolicy,
    SimulationConfig,
    random_fifteen_job,
    random_five_job,
    random_ten_job,
    run_scenario,
)
from repro.analysis.compare import compare_runs
from repro.experiments.report import render_header, render_sparkline
from repro.metrics.summary import jitter_index


SCALES = [
    ("5 jobs (§5.4)", random_five_job, FlowConConfig(alpha=0.03, itval=30.0)),
    ("10 jobs (§5.5.1)", random_ten_job, FlowConConfig(alpha=0.10, itval=20.0)),
    ("15 jobs (§5.5.2)", random_fifteen_job, FlowConConfig(alpha=0.10, itval=40.0)),
]


def main(seed: int = 42) -> None:
    for title, builder, fc_cfg in SCALES:
        specs = builder(seed)
        sim_cfg = SimulationConfig(seed=seed, trace=False)
        na = run_scenario(specs, NAPolicy(), sim_cfg)
        fc = run_scenario(specs, FlowConPolicy(fc_cfg), sim_cfg)
        report = compare_runs(na.summary, fc.summary,
                              treatment_name=fc_cfg.describe())

        print(render_header(f"{title} — {fc_cfg.describe()} vs NA"))
        for label in sorted(
            report.reductions, key=lambda s: int(s.split("-")[1])
        ):
            marker = "+" if report.reductions[label] > 0 else "-"
            print(
                f"  {label:<8} NA {na.completion_times()[label]:8.1f}s  "
                f"FlowCon {fc.completion_times()[label]:8.1f}s  "
                f"[{marker}] {report.reductions[label]:+6.1f} %"
            )
        print(
            f"  wins {report.wins}/{report.n_jobs}; makespan "
            f"{na.makespan:.1f} → {fc.makespan:.1f} s "
            f"({report.makespan_reduction:+.2f} %)"
        )

        # Fig. 15/16-style smoothness comparison.
        fc_j = np.mean([
            jitter_index(t.cpu_usage, grid_step=5.0)
            for t in fc.recorder.traces.values()
            if not t.cpu_usage.empty
        ])
        na_j = np.mean([
            jitter_index(t.cpu_usage, grid_step=5.0)
            for t in na.recorder.traces.values()
            if not t.cpu_usage.empty
        ])
        print(f"  usage jitter: FlowCon {fc_j:.4f} vs NA {na_j:.4f}")

        example = fc.trace("Job-1").cpu_usage
        if not example.empty:
            _, values = example.arrays()
            print(f"  Job-1 usage |{render_sparkline(values, width=56)}|\n")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
